//! The staged flow-sensitive baseline (SFS), equations (6)–(7) of the
//! paper.
//!
//! Every SVFG node keeps an `IN` map from objects to points-to sets;
//! `STORE` nodes additionally keep an `OUT` map. Indirect edges propagate
//! whole points-to sets from the producing side of one node to the `IN`
//! of the next — the redundant single-object propagation and storage that
//! VSFS eliminates.
//!
//! Dirty tracking: a `(node, object)` pair is marked dirty when the value
//! the node would propagate for that object may have changed; popping a
//! node propagates only its dirty objects.

use crate::region::RegionMemo;
use crate::result::{FlowSensitiveResult, GovernedAnalysis, SolveStats};
use crate::schedule::{svfg_schedule, SolveConfig, SolveOrder};
use crate::toplevel::{TopLevel, EMPTY};
use std::collections::HashMap;
use std::time::Instant;
use vsfs_adt::govern::{Completion, Governor};
use vsfs_adt::{IndexVec, PointsToSet, PtsId, PtsStore, Worklist};
use vsfs_andersen::AndersenResult;
use vsfs_ir::{FuncId, InstId, InstKind, ObjId, Program, ValueId};
use vsfs_mssa::MemorySsa;
use vsfs_svfg::{Svfg, SvfgNodeId, SvfgNodeKind};

/// Runs the SFS baseline to a fixpoint under the default (topological)
/// schedule.
pub fn run_sfs(
    prog: &Program,
    aux: &AndersenResult,
    mssa: &MemorySsa,
    svfg: &Svfg,
) -> FlowSensitiveResult {
    run_sfs_ordered(prog, aux, mssa, svfg, SolveOrder::default())
}

/// Runs the SFS baseline under an explicit worklist [`SolveOrder`]. The
/// fixpoint is order-independent; only the visit counts change.
pub fn run_sfs_ordered(
    prog: &Program,
    aux: &AndersenResult,
    mssa: &MemorySsa,
    svfg: &Svfg,
    order: SolveOrder,
) -> FlowSensitiveResult {
    run_sfs_configured(prog, aux, mssa, svfg, SolveConfig::from(order))
}

/// Runs the SFS baseline under a full [`SolveConfig`] (worklist order
/// plus the region memo switch). Results are bit-identical across every
/// configuration.
pub fn run_sfs_configured(
    prog: &Program,
    aux: &AndersenResult,
    mssa: &MemorySsa,
    svfg: &Svfg,
    config: SolveConfig,
) -> FlowSensitiveResult {
    solve_inner(prog, aux, mssa, svfg, None, config).0
}

/// Runs the SFS baseline under a [`Governor`]: one cooperative
/// checkpoint per worklist pop. On a trip the returned
/// [`GovernedAnalysis`] carries the sound Andersen fallback instead of a
/// partial flow-sensitive result.
pub fn run_sfs_governed(
    prog: &Program,
    aux: &AndersenResult,
    mssa: &MemorySsa,
    svfg: &Svfg,
    governor: &Governor,
) -> GovernedAnalysis {
    run_sfs_governed_ordered(prog, aux, mssa, svfg, governor, SolveOrder::default())
}

/// [`run_sfs_governed`] with an explicit worklist [`SolveOrder`].
pub fn run_sfs_governed_ordered(
    prog: &Program,
    aux: &AndersenResult,
    mssa: &MemorySsa,
    svfg: &Svfg,
    governor: &Governor,
    order: SolveOrder,
) -> GovernedAnalysis {
    run_sfs_governed_configured(prog, aux, mssa, svfg, governor, SolveConfig::from(order))
}

/// [`run_sfs_governed`] with a full [`SolveConfig`].
pub fn run_sfs_governed_configured(
    prog: &Program,
    aux: &AndersenResult,
    mssa: &MemorySsa,
    svfg: &Svfg,
    governor: &Governor,
    config: SolveConfig,
) -> GovernedAnalysis {
    let (result, completion) = solve_inner(prog, aux, mssa, svfg, Some(governor), config);
    match completion {
        Completion::Complete => GovernedAnalysis::complete(result),
        Completion::Degraded(reason) => GovernedAnalysis::fallback(prog, aux, "solve", reason),
    }
}

fn solve_inner(
    prog: &Program,
    aux: &AndersenResult,
    mssa: &MemorySsa,
    svfg: &Svfg,
    governor: Option<&Governor>,
    config: SolveConfig,
) -> (FlowSensitiveResult, Completion) {
    let (result, completion, _) = solve_impl(prog, aux, mssa, svfg, governor, config, None, false);
    (result, completion)
}

/// Warm state to resume from: the surviving portion of a previous run's
/// fixpoint, already remapped into the *current* parse's id spaces (see
/// `crate::incremental`). Every `PtsId` refers to `store`.
pub(crate) struct SfsSeed {
    /// The successor-epoch store holding all carried sets.
    pub store: PtsStore<ObjId>,
    /// Final top-level sets for values whose defining node is clean.
    pub pt: Vec<(ValueId, PtsId)>,
    /// Final `IN` entries of clean nodes, each sorted by object.
    pub ins: Vec<(SvfgNodeId, Vec<(ObjId, PtsId)>)>,
    /// Final `OUT` entries of clean STORE nodes.
    pub outs: Vec<(SvfgNodeId, Vec<(ObjId, PtsId)>)>,
    /// Call-graph activations whose call node is clean.
    pub activations: Vec<(InstId, FuncId)>,
    /// Nodes whose previous fixpoint state survives the edit.
    pub clean: IndexVec<SvfgNodeId, bool>,
}

/// The per-node `IN`/`OUT` tables of a completed run, extracted in
/// deterministic (object-sorted) order so the next edit can seed from
/// them.
pub(crate) struct SfsHarvest {
    pub ins: IndexVec<SvfgNodeId, Vec<(ObjId, PtsId)>>,
    pub outs: IndexVec<SvfgNodeId, Vec<(ObjId, PtsId)>>,
}

/// Runs SFS from `seed` (or cold when `None`), returning the per-node
/// state tables alongside the result so the caller can stay resident.
/// The fixpoint is identical to a cold solve — seeding only skips work
/// that would reconverge to the carried values.
pub(crate) fn run_sfs_seeded(
    prog: &Program,
    aux: &AndersenResult,
    mssa: &MemorySsa,
    svfg: &Svfg,
    config: SolveConfig,
    governor: Option<&Governor>,
    seed: Option<SfsSeed>,
) -> (FlowSensitiveResult, Completion, Option<SfsHarvest>) {
    solve_impl(prog, aux, mssa, svfg, governor, config, seed, true)
}

#[allow(clippy::too_many_arguments)]
fn solve_impl(
    prog: &Program,
    aux: &AndersenResult,
    mssa: &MemorySsa,
    svfg: &Svfg,
    governor: Option<&Governor>,
    config: SolveConfig,
    seed: Option<SfsSeed>,
    want_harvest: bool,
) -> (FlowSensitiveResult, Completion, Option<SfsHarvest>) {
    let start = Instant::now();
    let mut solver = SfsSolver::new(prog, aux, mssa, svfg, config);
    match seed {
        Some(seed) => solver.apply_seed(seed),
        None => solver.init_cold(),
    }
    let completion = solver.solve_governed(governor);
    let mut stats = solver.stats;
    stats.solve_seconds = start.elapsed().as_secs_f64();
    stats.pushes_suppressed = solver.worklist.stats().suppressed;
    let (sets, elems, bytes) = solver.storage_stats();
    stats.stored_object_sets = sets;
    stats.stored_object_elems = elems;
    stats.stored_object_bytes = bytes;
    stats.store = solver.top.store.stats();
    let harvest = (want_harvest && completion == Completion::Complete).then(|| solver.harvest());
    let callgraph_edges = solver.top.callgraph_edges();
    (
        FlowSensitiveResult::new(solver.top.store, solver.top.pt, callgraph_edges, stats),
        completion,
        harvest,
    )
}

/// `IN`/`OUT` entries hold ids into the run's shared
/// [`vsfs_adt::PtsStore`] (`TopLevel::store`); identical sets across
/// nodes are stored once.
type ObjMap = HashMap<ObjId, PtsId>;

struct SfsSolver<'a> {
    prog: &'a Program,
    mssa: &'a MemorySsa,
    svfg: &'a Svfg,
    top: TopLevel<'a>,
    /// IN set per node.
    ins: IndexVec<SvfgNodeId, ObjMap>,
    /// OUT set per node (populated for STORE nodes only).
    outs: IndexVec<SvfgNodeId, ObjMap>,
    /// Indirect edges activated by on-the-fly call-graph resolution.
    dyn_succs: IndexVec<SvfgNodeId, Vec<(SvfgNodeId, ObjId)>>,
    /// Difference-propagation frontier per static labelled indirect
    /// edge: the set id last shipped along the `k`-th `(succ, obj)` pair
    /// of `svfg.indirect_succs_expanded(n)`. Only the
    /// `diff(current, frontier)` part of a value crosses an edge again.
    edge_frontier: IndexVec<SvfgNodeId, Vec<PtsId>>,
    /// Same frontier for the activated (`dyn_succs`) edges, parallel to
    /// each node's `dyn_succs` list.
    dyn_frontier: IndexVec<SvfgNodeId, Vec<PtsId>>,
    /// Objects whose outgoing value changed since the node last ran.
    dirty: IndexVec<SvfgNodeId, PointsToSet<ObjId>>,
    /// Region-level operation memoization (see `crate::region`).
    memo: RegionMemo,
    /// Chi objects each STORE node statically strong-updates: their
    /// consumed `IN` state is killed, so its growth is not an effective
    /// input delivery and does not bump the memo's component stamp.
    su_kill: IndexVec<SvfgNodeId, PointsToSet<ObjId>>,
    worklist: Worklist<SvfgNodeId>,
    stats: SolveStats,
}

impl<'a> SfsSolver<'a> {
    fn new(
        prog: &'a Program,
        aux: &'a AndersenResult,
        mssa: &'a MemorySsa,
        svfg: &'a Svfg,
        config: SolveConfig,
    ) -> Self {
        let n = svfg.node_count();
        let top = TopLevel::new(prog, aux, svfg);
        let (ranks, comps) = svfg_schedule(prog, svfg);
        let worklist = match config.order {
            SolveOrder::Fifo => Worklist::fifo(n),
            SolveOrder::Topo => Worklist::priority(ranks),
        };
        let memo = RegionMemo::new(prog, svfg, comps, config.region_memo);
        let mut su_kill: IndexVec<SvfgNodeId, PointsToSet<ObjId>> =
            (0..n).map(|_| PointsToSet::new()).collect();
        for (i, inst) in prog.insts.iter_enumerated() {
            if let InstKind::Store { addr, .. } = inst.kind {
                let node = svfg.inst_node(i);
                for chi in mssa.chis(i) {
                    if top.is_strong_update(addr, chi.obj) {
                        su_kill[node].insert(chi.obj);
                    }
                }
            }
        }
        SfsSolver {
            prog,
            mssa,
            svfg,
            top,
            ins: (0..n).map(|_| ObjMap::new()).collect(),
            outs: (0..n).map(|_| ObjMap::new()).collect(),
            dyn_succs: (0..n).map(|_| Vec::new()).collect(),
            edge_frontier: svfg
                .node_ids()
                .map(|id| vec![EMPTY; svfg.indirect_succs_expanded(id).count()])
                .collect(),
            dyn_frontier: (0..n).map(|_| Vec::new()).collect(),
            dirty: (0..n).map(|_| PointsToSet::new()).collect(),
            memo,
            su_kill,
            worklist,
            stats: SolveStats::default(),
        }
    }

    /// Cold start: every node visits at least once.
    fn init_cold(&mut self) {
        for id in self.svfg.node_ids() {
            self.worklist.push(id);
        }
    }

    /// Warm start: installs the carried fixpoint state of clean nodes and
    /// schedules only the work the edit could affect.
    ///
    /// Frontier rule, per indirect edge `src --o--> dst`:
    /// * both endpoints clean — the old run converged, so the frontier
    ///   equals the value `src` exposes (a re-ship would be a no-op);
    /// * `dst` dirty (its `IN` was reset) — frontier `EMPTY`, and if the
    ///   clean `src` exposes a value it is marked dirty and enqueued so
    ///   the full value ships again (propagation is push-based: a clean
    ///   source would otherwise never re-offer it);
    /// * `src` dirty — frontier `EMPTY`; the node re-runs from scratch
    ///   and ships whatever it recomputes.
    ///
    /// Clean nodes with a *direct* edge into a dirty node also re-run:
    /// call and exit transfers publish argument/return bindings through
    /// `TopLevel`, and a dirty callee entry (or return site) needs those
    /// pushed again. Their object state is final, so the re-run is a
    /// no-op beyond the pushes.
    fn apply_seed(&mut self, seed: SfsSeed) {
        let SfsSeed { store, pt, ins, outs, activations, clean } = seed;
        self.top.seed_state(store, &pt, &activations);
        for (n, entries) in ins {
            let m = &mut self.ins[n];
            for (o, id) in entries {
                m.insert(o, id);
            }
        }
        for (n, entries) in outs {
            let m = &mut self.outs[n];
            for (o, id) in entries {
                m.insert(o, id);
            }
        }
        for n in self.svfg.node_ids() {
            if !clean[n] {
                continue;
            }
            let pairs: Vec<(SvfgNodeId, ObjId)> = self.svfg.indirect_succs_expanded(n).collect();
            for (k, (succ, o)) in pairs.into_iter().enumerate() {
                let val = self.out_val(n, o);
                if clean[succ] {
                    self.edge_frontier[n][k] = val.unwrap_or(EMPTY);
                } else if val.is_some_and(|v| v != EMPTY) {
                    self.dirty[n].insert(o);
                    self.worklist.push(n);
                }
            }
        }
        // Re-wire the dynamic edges of retained activations (indirect
        // calls only; direct-call edges are static), same frontier rule.
        for &(call, callee) in &activations {
            let Some(binding) = self.svfg.call_binding(call, callee) else { continue };
            let binding = binding.clone();
            let call_node = self.svfg.inst_node(call);
            let ret_node = self.svfg.callret_node(call);
            let f = &self.prog.functions[callee];
            let entry_node = self.svfg.inst_node(f.entry_inst);
            let exit_node = self.svfg.inst_node(f.exit_inst);
            let pairs = [(call_node, entry_node, binding.ins), (exit_node, ret_node, binding.outs)];
            for (src, dst, objs) in pairs {
                for o in objs {
                    self.dyn_succs[src].push((dst, o));
                    let val = if clean[src] { self.out_val(src, o) } else { None };
                    let frontier =
                        if clean[src] && clean[dst] { val.unwrap_or(EMPTY) } else { EMPTY };
                    self.dyn_frontier[src].push(frontier);
                    if frontier == EMPTY && val.is_some_and(|v| v != EMPTY) {
                        self.dirty[src].insert(o);
                        self.worklist.push(src);
                    }
                }
            }
        }
        for n in self.svfg.node_ids() {
            if !clean[n] || self.svfg.direct_succs(n).iter().any(|&s| !clean[s]) {
                self.worklist.push(n);
            }
        }
    }

    /// Extracts the converged `IN`/`OUT` tables in object-sorted order.
    fn harvest(&self) -> SfsHarvest {
        let collect = |maps: &IndexVec<SvfgNodeId, ObjMap>| {
            maps.iter()
                .map(|m| {
                    let mut v: Vec<(ObjId, PtsId)> = m.iter().map(|(&o, &id)| (o, id)).collect();
                    v.sort_unstable_by_key(|e| e.0);
                    v
                })
                .collect()
        };
        SfsHarvest { ins: collect(&self.ins), outs: collect(&self.outs) }
    }

    /// The fixpoint loop, with one cooperative governor checkpoint per
    /// (sequential) worklist pop; ungoverned it is the plain fixpoint.
    fn solve_governed(&mut self, governor: Option<&Governor>) -> Completion {
        while let Some(node) = self.worklist.pop() {
            if let Some(g) = governor {
                if let Err(reason) = g.check(1) {
                    return Completion::Degraded(reason);
                }
            }
            self.stats.node_pops += 1;
            if self.memo.admit(node, &self.top.pt, &mut self.stats) {
                self.process(node);
            }
        }
        Completion::Complete
    }

    fn process(&mut self, node: SvfgNodeId) {
        match self.svfg.kind(node) {
            SvfgNodeKind::Inst(inst) => self.process_inst(node, inst),
            SvfgNodeKind::CallRet(_) | SvfgNodeKind::MemPhi(_) => {
                // Pure relays: propagate dirty IN entries onward.
                self.propagate_dirty(node);
            }
        }
    }

    fn process_inst(&mut self, node: SvfgNodeId, inst: InstId) {
        let mut newly_activated = Vec::new();
        self.top.transfer(inst, &mut self.worklist, &mut newly_activated);
        for (call, callee) in newly_activated {
            self.activate_binding(call, callee);
        }
        match &self.prog.insts[inst].kind {
            InstKind::Load { dst, addr } => {
                // [LOAD]: pt(dst) ⊇ IN[node][o] for each o ∈ pt(addr).
                let objs: Vec<ObjId> = self.top.value_pt_iter(*addr).collect();
                for o in objs {
                    if let Some(&s) = self.ins[node].get(&o) {
                        self.top.union_pt(*dst, s, &mut self.worklist);
                    }
                }
                self.propagate_dirty(node); // loads relay their IN onward
            }
            InstKind::Store { addr, val } => {
                // [STORE] + [SU/WU]: recompute OUT for the chi objects.
                // The strong/weak decision is static (see
                // `TopLevel::is_strong_update`), keeping the transfer
                // monotone.
                let gen = self.top.pt[*val];
                let targets = self.top.pt[*addr];
                let addr = *addr;
                for chi in self.mssa.chis(inst) {
                    let o = chi.obj;
                    let mut out = EMPTY;
                    if self.top.is_strong_update(addr, o) {
                        self.stats.strong_updates += 1;
                        out = gen; // kill: IN not propagated
                    } else {
                        if let Some(&input) = self.ins[node].get(&o) {
                            out = input;
                        }
                        if self.top.store.contains(targets, o) {
                            out = self.top.store.union(out, gen);
                        }
                    }
                    self.stats.object_propagations += 1;
                    let cur = *self.outs[node].entry(o).or_insert(EMPTY);
                    let new = self.top.store.union(cur, out);
                    if new != cur {
                        self.outs[node].insert(o, new);
                        self.dirty[node].insert(o);
                    }
                }
                self.propagate_dirty(node);
            }
            _ => {
                self.propagate_dirty(node);
            }
        }
    }

    /// The set id a node exposes to its successors for object `o`.
    fn out_val(&self, node: SvfgNodeId, o: ObjId) -> Option<PtsId> {
        let is_store = matches!(
            self.svfg.kind(node),
            SvfgNodeKind::Inst(i) if self.prog.insts[i].kind.is_store()
        );
        if is_store {
            self.outs[node].get(&o).copied()
        } else {
            self.ins[node].get(&o).copied()
        }
    }

    /// Pushes the dirty objects of `node` along its (static + activated)
    /// indirect out-edges, then clears the dirty set.
    ///
    /// Propagation is *differential*: each edge remembers the set id it
    /// last shipped, and only `diff(value, last)` crosses again. This is
    /// exact, not approximate — edge values grow monotonically, so the
    /// target already holds everything shipped before, and
    /// `target ∪ (value \ last) = target ∪ value`.
    fn propagate_dirty(&mut self, node: SvfgNodeId) {
        if self.dirty[node].is_empty() {
            return;
        }
        let dirty = std::mem::take(&mut self.dirty[node]);
        let mut k = 0;
        for gi in 0..self.svfg.indirect_succs(node).len() {
            let (succ, s) = self.svfg.indirect_succs(node)[gi];
            let set_len = self.svfg.obj_set(s).len();
            for oi in 0..set_len {
                let o = self.svfg.obj_set(s)[oi];
                if !dirty.contains(o) {
                    k += 1;
                    continue;
                }
                let last = self.edge_frontier[node][k];
                let shipped = self.ship_delta(node, succ, o, last);
                self.edge_frontier[node][k] = shipped;
                k += 1;
            }
        }
        for i in 0..self.dyn_succs[node].len() {
            let (succ, o) = self.dyn_succs[node][i];
            if !dirty.contains(o) {
                continue;
            }
            let last = self.dyn_frontier[node][i];
            let shipped = self.ship_delta(node, succ, o, last);
            self.dyn_frontier[node][i] = shipped;
        }
    }

    /// Ships what `node` exposes for `o` beyond the edge's `last`
    /// frontier into `IN[succ][o]`; returns the new frontier (the full
    /// value now covered by the target).
    fn ship_delta(&mut self, node: SvfgNodeId, succ: SvfgNodeId, o: ObjId, last: PtsId) -> PtsId {
        self.stats.object_propagations += 1;
        let Some(val) = self.out_val(node, o) else { return last };
        if val == last {
            // Frontier already current: nothing new can flow.
            self.stats.unions_avoided += 1;
            return last;
        }
        self.stats.full_bytes += self.top.store.flat_bytes(val);
        let delta = self.top.store.diff(val, last);
        self.stats.delta_bytes += self.top.store.flat_bytes(delta);
        let cur = self.ins[succ].get(&o).copied().unwrap_or(EMPTY);
        // Memoized no-growth fast path: repeated (cur, delta) pairs are
        // answered from the store's union memo without allocating.
        if delta == EMPTY || !self.top.store.union_would_change(cur, delta) {
            self.stats.unions_avoided += 1;
            return val;
        }
        let new = self.top.store.union(cur, delta);
        self.ins[succ].insert(o, new);
        self.dirty[succ].insert(o);
        // A statically-strong store kills the consumed state of `o`, so
        // this delivery cannot change its outputs — the pop it triggers
        // is skippable and the stamps stay put.
        if !self.su_kill[succ].contains(o) {
            self.memo.invalidate_edge(node, succ);
        }
        self.worklist.push(succ);
        val
    }

    /// Wires up the deferred indirect-call object flow for a newly
    /// activated `(call, callee)` pair.
    fn activate_binding(&mut self, call: InstId, callee: FuncId) {
        self.stats.calls_activated += 1;
        // The new caller is input to the callee's `FUNEXIT` transfer (it
        // publishes its return to the grown caller list), and this
        // function may mark the exit dirty below without a worklist push
        // of its own — the memo must not skip the exit pop
        // `TopLevel::activate` queued. The *entry* pop it queued needs no
        // bump: `FUNENTRY` has no transfer, and the caller's object state
        // arrives through `ship_delta`, which bumps on delivery.
        let f = &self.prog.functions[callee];
        self.memo.invalidate(self.svfg.inst_node(f.exit_inst));
        let Some(binding) = self.svfg.call_binding(call, callee) else {
            return; // direct call: edges already in the static SVFG
        };
        let binding = binding.clone();
        let call_node = self.svfg.inst_node(call);
        let ret_node = self.svfg.callret_node(call);
        let entry_node = self.svfg.inst_node(self.prog.functions[callee].entry_inst);
        let exit_node = self.svfg.inst_node(self.prog.functions[callee].exit_inst);
        for o in binding.ins {
            self.dyn_succs[call_node].push((entry_node, o));
            self.dyn_frontier[call_node].push(EMPTY);
            // Anything already known at the call must flow now.
            if self.ins[call_node].contains_key(&o) {
                self.dirty[call_node].insert(o);
            }
        }
        for o in binding.outs {
            self.dyn_succs[exit_node].push((ret_node, o));
            self.dyn_frontier[exit_node].push(EMPTY);
            if self.ins[exit_node].contains_key(&o) {
                self.dirty[exit_node].insert(o);
            }
        }
        // No worklist pushes here: activation only happens while the call
        // node itself is being processed (its own `propagate_dirty` runs
        // right after), and `TopLevel::activate` already queued the
        // callee's entry and exit nodes.
    }

    /// `(set count, total elements, approximate heap bytes)` across all
    /// IN/OUT entries — the storage the paper's Table III memory column
    /// tracks.
    fn storage_stats(&self) -> (usize, usize, usize) {
        let mut sets = 0;
        let mut elems = 0;
        let mut bytes = 0;
        for m in self.ins.iter().chain(self.outs.iter()) {
            sets += m.len();
            for &id in m.values() {
                elems += self.top.store.set_len(id);
                bytes += self.top.store.flat_bytes(id);
            }
        }
        (sets, elems, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsfs_ir::parse_program;

    fn solve(src: &str) -> (Program, FlowSensitiveResult) {
        let prog = parse_program(src).unwrap();
        vsfs_ir::verify::verify(&prog).unwrap();
        let aux = vsfs_andersen::analyze(&prog);
        let mssa = MemorySsa::build(&prog, &aux);
        let svfg = Svfg::build(&prog, &aux, &mssa);
        let r = run_sfs(&prog, &aux, &mssa, &svfg);
        (prog, r)
    }

    fn pts(prog: &Program, r: &FlowSensitiveResult, name: &str) -> Vec<String> {
        let v = prog
            .values
            .iter_enumerated()
            .find(|(_, val)| val.name == name)
            .map(|(id, _)| id)
            .unwrap();
        let mut names: Vec<String> =
            r.value_pts(v).iter().map(|o| prog.objects[o].name.clone()).collect();
        names.sort();
        names
    }

    #[test]
    fn two_level_loads() {
        let (prog, r) = solve(
            r#"
            func @main() {
            entry:
              %pp = alloc stack PP
              %p = alloc stack P
              %h = alloc heap H
              store %p, %pp
              store %h, %p
              %p2 = load %pp
              %v = load %p2
              ret
            }
            "#,
        );
        assert_eq!(pts(&prog, &r, "p2"), vec!["P"]);
        assert_eq!(pts(&prog, &r, "v"), vec!["H"]);
    }

    #[test]
    fn flow_sensitive_callgraph_beats_andersen() {
        // Flow-sensitively, only @first is in the table when the icall
        // runs; Andersen conflates both stores.
        let src = r#"
            global @tab
            func @first(%x) {
            entry:
              ret %x
            }
            func @second(%x) {
            entry:
              %h = alloc heap FromSecond
              ret %h
            }
            func @main() {
            entry:
              %f1 = funaddr @first
              store %f1, @tab
              %fp = load @tab
              %arg = alloc heap Arg
              %r = icall %fp(%arg)
              %f2 = funaddr @second
              store %f2, @tab
              ret
            }
            "#;
        let (prog, r) = solve(src);
        let aux = vsfs_andersen::analyze(&prog);
        let icall = prog
            .insts
            .iter_enumerated()
            .find(|(_, i)| matches!(i.kind, InstKind::Call { .. }))
            .map(|(id, _)| id)
            .unwrap();
        assert_eq!(aux.callgraph.callees(icall).len(), 2, "Andersen sees both");
        let fs_callees: Vec<FuncId> =
            r.callgraph_edges.iter().filter(|(c, _)| *c == icall).map(|&(_, f)| f).collect();
        assert_eq!(fs_callees.len(), 1, "flow-sensitively only @first");
        assert_eq!(prog.functions[fs_callees[0]].name, "first");
        // And the result only flows from @first: r = Arg, not FromSecond.
        assert_eq!(pts(&prog, &r, "r"), vec!["Arg"]);
    }

    #[test]
    fn weak_update_into_heap_accumulates() {
        let (prog, r) = solve(
            r#"
            func @main() {
            entry:
              %h = alloc heap Cell
              %a = alloc heap A
              %b = alloc heap B
              store %a, %h
              store %b, %h
              %v = load %h
              ret
            }
            "#,
        );
        assert_eq!(pts(&prog, &r, "v"), vec!["A", "B"], "heap stores are weak");
        assert!(r.stats.strong_updates == 0);
    }
}

//! Fixpoint scheduling: worklist order selection and rank computation.
//!
//! Both flow-sensitive solvers drain monotone constraint systems, so the
//! worklist policy changes only *when* work happens — the final fixpoint
//! is the same unique least solution under any order. What the order does
//! change is how much redundant work the fixpoint performs: a FIFO
//! worklist re-visits a node every time any input grows, while a
//! topological (SCC-condensation) order lets producers settle before
//! consumers run, so most nodes are popped close to once per growth wave.
//!
//! Ranks are computed once per solve from the *static* dependence graph
//! (SVFG edges plus every possible on-the-fly call binding for node
//! scheduling; version reliance edges plus candidate activation pairs for
//! VSFS slot scheduling). Edges activated during solving are therefore
//! already ranked, and a newly activated edge can never make the order
//! unsound — only locally non-topological, costing at worst extra
//! re-visits.

use vsfs_graph::{condensation_ranks, DiGraph, Sccs};
use vsfs_ir::{InstId, Program};
use vsfs_svfg::{Svfg, SvfgNodeId};

use crate::versioning::VersionTables;

/// Worklist scheduling policy for the flow-sensitive fixpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolveOrder {
    /// Plain FIFO: elements pop in enqueue order.
    Fifo,
    /// SCC-condensation topological order: producers before consumers,
    /// FIFO within a cycle. The default.
    #[default]
    Topo,
}

/// Configuration of the staged flow-sensitive fixpoints (SFS/VSFS).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveConfig {
    /// Worklist scheduling policy.
    pub order: SolveOrder,
    /// Region-level operation memoization (see `crate::region`): skip a
    /// node pop when its SVFG component's input stamp and its top-level
    /// operand sets are unchanged since the node last ran. The fixpoint
    /// is bit-identical either way; default on.
    pub region_memo: bool,
}

impl Default for SolveConfig {
    fn default() -> Self {
        SolveConfig { order: SolveOrder::default(), region_memo: true }
    }
}

impl From<SolveOrder> for SolveConfig {
    fn from(order: SolveOrder) -> Self {
        SolveConfig { order, ..SolveConfig::default() }
    }
}

impl SolveOrder {
    /// Parses a CLI-facing order name.
    pub fn parse(s: &str) -> Option<SolveOrder> {
        match s {
            "fifo" => Some(SolveOrder::Fifo),
            "topo" => Some(SolveOrder::Topo),
            _ => None,
        }
    }

    /// The CLI-facing name.
    pub fn name(self) -> &'static str {
        match self {
            SolveOrder::Fifo => "fifo",
            SolveOrder::Topo => "topo",
        }
    }
}

/// The deferred `(call, callee)` bindings of `svfg` in a deterministic
/// order. The underlying map is hash-keyed, so anything order-sensitive
/// (rank assignment via Tarjan's DFS) must go through this.
fn sorted_binding_pairs(svfg: &Svfg) -> Vec<(InstId, vsfs_ir::FuncId)> {
    let mut pairs: Vec<_> = svfg.call_bindings().map(|(&k, _)| k).collect();
    pairs.sort_unstable();
    pairs
}

/// The solve-dependence graph behind the SVFG node worklist: every
/// direct and indirect SVFG edge, plus — for each *possible*
/// indirect-call activation — the `call → FUNENTRY` and
/// `FUNEXIT → return-side` edges the solver may wire up on the fly.
/// Including candidate activations keeps the derived order topological
/// even after δ-node edges appear mid-solve.
fn svfg_dep_graph(prog: &Program, svfg: &Svfg) -> DiGraph<SvfgNodeId> {
    let mut g: DiGraph<SvfgNodeId> = DiGraph::with_nodes(svfg.node_count());
    for n in svfg.node_ids() {
        for &s in svfg.direct_succs(n) {
            g.add_edge(n, s);
        }
        for &(s, _) in svfg.indirect_succs(n) {
            g.add_edge(n, s);
        }
    }
    for (call, callee) in sorted_binding_pairs(svfg) {
        let f = &prog.functions[callee];
        g.add_edge(svfg.inst_node(call), svfg.inst_node(f.entry_inst));
        g.add_edge(svfg.inst_node(f.exit_inst), svfg.callret_node(call));
    }
    g
}

/// Worklist ranks *and* SCC component ids per SVFG node, from one
/// dependence-graph build. Ranks order the topological worklist;
/// component ids key the region memo's input stamps. The two are
/// distinct: independent SCCs at the same condensation depth share a
/// rank but must not share a stamp, or unrelated deliveries would
/// invalidate each other's regions.
pub(crate) fn svfg_schedule(prog: &Program, svfg: &Svfg) -> (Vec<u32>, Vec<u32>) {
    let g = svfg_dep_graph(prog, svfg);
    let ranks = condensation_ranks(&g);
    let sccs = Sccs::compute(&g);
    let comps = svfg.node_ids().map(|n| sccs.component(n)).collect();
    (ranks, comps)
}

/// Topological ranks for the VSFS version-slot worklist.
///
/// The dependence graph is the static version reliance relation plus the
/// candidate `(yield, consume)` pairs an on-the-fly call activation could
/// add, mirroring `VsfsSolver::activate_binding`.
pub(crate) fn slot_ranks(prog: &Program, svfg: &Svfg, tables: &VersionTables) -> Vec<u32> {
    let n = tables.slot_count() as usize;
    let mut g: DiGraph<usize> = DiGraph::with_nodes(n);
    for y in 0..n {
        for &c in tables.reliance(y as u32) {
            g.add_edge(y, c as usize);
        }
    }
    for (call, callee) in sorted_binding_pairs(svfg) {
        let binding =
            svfg.call_binding(call, callee).expect("binding pair came from the binding map");
        let call_node = svfg.inst_node(call);
        let ret_node = svfg.callret_node(call);
        let f = &prog.functions[callee];
        let entry_node = svfg.inst_node(f.entry_inst);
        let exit_node = svfg.inst_node(f.exit_inst);
        for &o in &binding.ins {
            if let (Some(y), Some(c)) =
                (tables.yield_slot(call_node, o), tables.consume_slot(entry_node, o))
            {
                g.add_edge(y as usize, c as usize);
            }
        }
        for &o in &binding.outs {
            if let (Some(y), Some(c)) =
                (tables.yield_slot(exit_node, o), tables.consume_slot(ret_node, o))
            {
                g.add_edge(y as usize, c as usize);
            }
        }
    }
    condensation_ranks(&g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsfs_ir::parse_program;
    use vsfs_mssa::MemorySsa;

    #[test]
    fn order_parses_and_round_trips() {
        assert_eq!(SolveOrder::parse("fifo"), Some(SolveOrder::Fifo));
        assert_eq!(SolveOrder::parse("topo"), Some(SolveOrder::Topo));
        assert_eq!(SolveOrder::parse("lifo"), None);
        assert_eq!(SolveOrder::default(), SolveOrder::Topo);
        for o in [SolveOrder::Fifo, SolveOrder::Topo] {
            assert_eq!(SolveOrder::parse(o.name()), Some(o));
        }
    }

    #[test]
    fn ranks_follow_store_load_chains() {
        let prog = parse_program(
            r#"
            func @main() {
            entry:
              %p = alloc stack Cell
              %h = alloc heap H
              store %h, %p
              %v = load %p
              ret
            }
            "#,
        )
        .unwrap();
        let aux = vsfs_andersen::analyze(&prog);
        let mssa = MemorySsa::build(&prog, &aux);
        let svfg = Svfg::build(&prog, &aux, &mssa);
        let (ranks, comps) = svfg_schedule(&prog, &svfg);
        assert_eq!(ranks.len(), svfg.node_count());
        assert_eq!(comps.len(), svfg.node_count());
        // This graph is acyclic, so component ids are distinct per node.
        let distinct: std::collections::HashSet<u32> = comps.iter().copied().collect();
        assert_eq!(distinct.len(), svfg.node_count());
        // Every static edge is (weakly) rank-ordered.
        for n in svfg.node_ids() {
            for &(s, _) in svfg.indirect_succs(n) {
                assert!(
                    ranks[n.index()] <= ranks[s.index()],
                    "indirect edge {n:?} -> {s:?} violates rank order"
                );
            }
            for &s in svfg.direct_succs(n) {
                assert!(ranks[n.index()] <= ranks[s.index()]);
            }
        }
    }

    #[test]
    fn slot_ranks_follow_reliance() {
        let prog = parse_program(
            r#"
            func @main() {
            entry:
              %p = alloc stack Cell array
              %a = alloc heap A
              store %a, %p
              %v1 = load %p
              store %v1, %p
              %v2 = load %p
              ret
            }
            "#,
        )
        .unwrap();
        let aux = vsfs_andersen::analyze(&prog);
        let mssa = MemorySsa::build(&prog, &aux);
        let svfg = Svfg::build(&prog, &aux, &mssa);
        let tables = VersionTables::build(&prog, &mssa, &svfg);
        let ranks = slot_ranks(&prog, &svfg, &tables);
        assert_eq!(ranks.len(), tables.slot_count() as usize);
        for y in 0..tables.slot_count() {
            for &c in tables.reliance(y) {
                assert!(ranks[y as usize] <= ranks[c as usize]);
            }
        }
    }
}

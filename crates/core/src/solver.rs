//! The solver family: every flow-sensitive engine behind one dispatch.
//!
//! Four interchangeable solvers produce a [`FlowSensitiveResult`]
//! (DESIGN.md §13):
//!
//! * **dense** — textbook IN/OUT iteration over the ICFG; the slow
//!   oracle the sparse engines are differentially tested against.
//! * **sfs** — staged flow-sensitive analysis over the SVFG
//!   (Hardekopf & Lin), with priority scheduling and difference
//!   propagation.
//! * **vsfs** — the paper's object-versioned SFS; batch solves share
//!   points-to sets per `(object, version)`.
//! * **cfgfree** — flow sensitivity recovered by *constraint ordering*
//!   over the Andersen constraint graph ("Flow Sensitivity without
//!   Control Flow Graph"): no memory SSA and no SVFG are ever built.
//!
//! [`SolverKind`] names the member; [`SolverCaps`] declares which
//!   pipeline stages it needs and which serving features it supports.
//! Everything downstream — `solve_program`, the incremental server, the
//! CLI, snapshots — dispatches on these capabilities instead of
//! hard-wiring the SVFG pipeline. A fifth solver plugs in by adding a
//! variant, a `run_*` entry point, and an honest `caps()` row.
//!
//! [`FlowSensitiveResult`]: crate::FlowSensitiveResult

/// Which flow-sensitive solver to run after the Andersen stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SolverKind {
    /// Dense IN/OUT iteration over the ICFG (differential oracle).
    Dense,
    /// Staged flow-sensitive analysis over the SVFG.
    Sfs,
    /// Object-versioned staged flow-sensitive analysis (the paper).
    #[default]
    Vsfs,
    /// Constraint-ordering flow sensitivity; builds no MSSA/SVFG.
    CfgFree,
}

/// What a solver needs from the pipeline and offers to the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverCaps {
    /// Needs the staged `MemorySsa` + `Svfg` stages before solving.
    pub needs_svfg: bool,
    /// Supports SVFG-wave incremental re-solving (`resolve_edit`).
    /// Solvers without it still serve edits — by exact cold re-solves.
    pub incremental: bool,
    /// Supports warm-state harvest/seed (and therefore snapshots).
    pub warm: bool,
}

impl SolverKind {
    /// Parses a solver name as it appears on `--solver` and in the
    /// server protocol. Returns `None` for unknown names so each layer
    /// can raise its own typed error.
    pub fn parse(name: &str) -> Option<SolverKind> {
        match name {
            "dense" => Some(SolverKind::Dense),
            "sfs" => Some(SolverKind::Sfs),
            "vsfs" => Some(SolverKind::Vsfs),
            "cfgfree" => Some(SolverKind::CfgFree),
            _ => None,
        }
    }

    /// The canonical lowercase name (inverse of [`SolverKind::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            SolverKind::Dense => "dense",
            SolverKind::Sfs => "sfs",
            SolverKind::Vsfs => "vsfs",
            SolverKind::CfgFree => "cfgfree",
        }
    }

    /// The capability row driving pipeline and server dispatch.
    ///
    /// `Sfs` and `Vsfs` share the staged engine for serving: a warm
    /// seed or an edit wave re-solves through `run_sfs_seeded`, which
    /// is bit-identical to both (the central equivalence property), so
    /// both declare `incremental` and `warm`. `Dense` and `CfgFree`
    /// never build an SVFG, so SVFG-wave invalidation and warm-state
    /// export are meaningless for them — the server falls back to
    /// exact cold re-solves instead.
    pub fn caps(self) -> SolverCaps {
        match self {
            SolverKind::Dense | SolverKind::CfgFree => SolverCaps {
                needs_svfg: false,
                incremental: false,
                warm: false,
            },
            SolverKind::Sfs | SolverKind::Vsfs => SolverCaps {
                needs_svfg: true,
                incremental: true,
                warm: true,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_member() {
        for kind in [
            SolverKind::Dense,
            SolverKind::Sfs,
            SolverKind::Vsfs,
            SolverKind::CfgFree,
        ] {
            assert_eq!(SolverKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(SolverKind::parse("ander"), None);
        assert_eq!(SolverKind::parse("bogus"), None);
        assert_eq!(SolverKind::parse(""), None);
    }

    #[test]
    fn capability_rows_are_internally_consistent() {
        for kind in [
            SolverKind::Dense,
            SolverKind::Sfs,
            SolverKind::Vsfs,
            SolverKind::CfgFree,
        ] {
            let caps = kind.caps();
            // Warm seeding and wave invalidation both live on the SVFG;
            // a solver cannot support either without building one.
            if caps.incremental || caps.warm {
                assert!(caps.needs_svfg, "{} claims warm/incremental without an SVFG", kind.name());
            }
        }
        assert_eq!(SolverKind::default(), SolverKind::Vsfs);
    }
}

//! The solver family: every flow-sensitive engine behind one dispatch.
//!
//! Four interchangeable solvers produce a [`FlowSensitiveResult`]
//! (DESIGN.md §13):
//!
//! * **dense** — textbook IN/OUT iteration over the ICFG; the slow
//!   oracle the sparse engines are differentially tested against.
//! * **sfs** — staged flow-sensitive analysis over the SVFG
//!   (Hardekopf & Lin), with priority scheduling and difference
//!   propagation.
//! * **vsfs** — the paper's object-versioned SFS; batch solves share
//!   points-to sets per `(object, version)`.
//! * **cfgfree** — flow sensitivity recovered by *constraint ordering*
//!   over the Andersen constraint graph ("Flow Sensitivity without
//!   Control Flow Graph"): no memory SSA and no SVFG are ever built.
//!
//! [`SolverKind`] names the member; [`SolverCaps`] declares which
//!   pipeline stages it needs and which serving features it supports.
//! Everything downstream — `solve_program`, the incremental server, the
//! CLI, snapshots — dispatches on these capabilities instead of
//! hard-wiring the SVFG pipeline. A fifth solver plugs in by adding a
//! variant, a `run_*` entry point, and an honest `caps()` row.
//!
//! [`FlowSensitiveResult`]: crate::FlowSensitiveResult

/// Which flow-sensitive solver to run after the Andersen stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SolverKind {
    /// Dense IN/OUT iteration over the ICFG (differential oracle).
    Dense,
    /// Staged flow-sensitive analysis over the SVFG.
    Sfs,
    /// Object-versioned staged flow-sensitive analysis (the paper).
    #[default]
    Vsfs,
    /// Constraint-ordering flow sensitivity; builds no MSSA/SVFG.
    CfgFree,
    /// Steensgaard-style unification pre-analysis (with no-oversharing
    /// refinements): the cheapest, coarsest tier. Flow-*insensitive*
    /// and cold-only — never builds MSSA or an SVFG.
    Unify,
}

/// What a solver needs from the pipeline and offers to the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverCaps {
    /// Needs the staged `MemorySsa` + `Svfg` stages before solving.
    pub needs_svfg: bool,
    /// Supports SVFG-wave incremental re-solving (`resolve_edit`).
    /// Solvers without it still serve edits — by exact cold re-solves.
    pub incremental: bool,
    /// Supports warm-state harvest/seed (and therefore snapshots).
    pub warm: bool,
}

impl SolverKind {
    /// Parses a solver name as it appears on `--solver` and in the
    /// server protocol. Returns `None` for unknown names so each layer
    /// can raise its own typed error.
    pub fn parse(name: &str) -> Option<SolverKind> {
        match name {
            "dense" => Some(SolverKind::Dense),
            "sfs" => Some(SolverKind::Sfs),
            "vsfs" => Some(SolverKind::Vsfs),
            "cfgfree" => Some(SolverKind::CfgFree),
            "unify" => Some(SolverKind::Unify),
            _ => None,
        }
    }

    /// The canonical lowercase name (inverse of [`SolverKind::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            SolverKind::Dense => "dense",
            SolverKind::Sfs => "sfs",
            SolverKind::Vsfs => "vsfs",
            SolverKind::CfgFree => "cfgfree",
            SolverKind::Unify => "unify",
        }
    }

    /// The capability row driving pipeline and server dispatch.
    ///
    /// `Sfs` and `Vsfs` share the staged engine for serving: a warm
    /// seed or an edit wave re-solves through `run_sfs_seeded`, which
    /// is bit-identical to both (the central equivalence property), so
    /// both declare `incremental` and `warm`. `Dense` and `CfgFree`
    /// never build an SVFG, so SVFG-wave invalidation and warm-state
    /// export are meaningless for them — the server falls back to
    /// exact cold re-solves instead.
    pub fn caps(self) -> SolverCaps {
        match self {
            SolverKind::Dense | SolverKind::CfgFree | SolverKind::Unify => {
                SolverCaps { needs_svfg: false, incremental: false, warm: false }
            }
            SolverKind::Sfs | SolverKind::Vsfs => {
                SolverCaps { needs_svfg: true, incremental: true, warm: true }
            }
        }
    }
}

impl SolverKind {
    /// Every member, in declaration order (for tests and help text).
    pub const ALL: [SolverKind; 5] = [
        SolverKind::Dense,
        SolverKind::Sfs,
        SolverKind::Vsfs,
        SolverKind::CfgFree,
        SolverKind::Unify,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_member() {
        for kind in SolverKind::ALL {
            assert_eq!(SolverKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(SolverKind::parse("ander"), None);
        assert_eq!(SolverKind::parse("bogus"), None);
        assert_eq!(SolverKind::parse(""), None);
    }

    #[test]
    fn capability_rows_are_internally_consistent() {
        for kind in SolverKind::ALL {
            let caps = kind.caps();
            // Warm seeding and wave invalidation both live on the SVFG;
            // a solver cannot support either without building one.
            if caps.incremental || caps.warm {
                assert!(caps.needs_svfg, "{} claims warm/incremental without an SVFG", kind.name());
            }
        }
        assert_eq!(SolverKind::default(), SolverKind::Vsfs);
    }

    /// Property: `parse` is the exact inverse of `name` — every member
    /// round-trips, every *perturbation* of a canonical name (case
    /// flip, truncation, extension, random garbage) parses to `None`
    /// unless it happens to equal another canonical name verbatim.
    #[test]
    fn parse_name_round_trip_property() {
        vsfs_testkit::check("solverkind_parse_name_round_trip", |rng| {
            let kind = SolverKind::ALL[rng.gen_range(0..SolverKind::ALL.len())];
            let name = kind.name();
            assert_eq!(SolverKind::parse(name), Some(kind));

            let mutated = match rng.gen_range(0..4u32) {
                0 => {
                    // Flip the case of one letter.
                    let i = rng.gen_range(0..name.len());
                    name.chars()
                        .enumerate()
                        .map(|(k, c)| if k == i { c.to_ascii_uppercase() } else { c })
                        .collect::<String>()
                }
                1 => name[..rng.gen_range(0..name.len())].to_string(),
                2 => format!("{name}{}", rng.gen_range(0..10u32)),
                _ => {
                    let len = rng.gen_range(1..12usize);
                    (0..len)
                        .map(|_| (b'a' + (rng.gen_range(0..26u32) as u8)) as char)
                        .collect::<String>()
                }
            };
            match SolverKind::parse(&mutated) {
                // A mutation may legitimately land on a canonical name.
                Some(k) => assert_eq!(k.name(), mutated),
                None => assert!(SolverKind::ALL.iter().all(|k| k.name() != mutated)),
            }
        });
    }
}

//! ID-independent export and restore of a completed solve's warm state
//! (DESIGN.md §12).
//!
//! The incremental engine's warm state (`IN`/`OUT` tables, top-level
//! sets, call activations) is keyed by arena ids that are only valid for
//! one parse of one process. To let the expensive fixpoint survive a
//! process restart, [`export_warm`] re-keys everything by the *stable*
//! cross-parse keys of [`vsfs_svfg::StableKeys`] — name/position hashes
//! that any parse of the same text reproduces — and hash-conses the
//! points-to sets into one deduplicated table, mirroring the in-memory
//! [`vsfs_adt::PtsStore`]. The result ([`WarmExport`]) is plain data the
//! server serializes to its snapshot files.
//!
//! [`restore_program`] is the inverse: rebuild the cheap front of the
//! pipeline (parse, auxiliary Andersen, memory SSA, SVFG, keys) from the
//! source text, remap every exported key into the fresh arena ids, and
//! hand the result to the seeded SFS solver with *every* node clean —
//! exactly the no-op-edit path of `crate::incremental`, which does zero
//! fixpoint work when the seed is already converged. The restored result
//! is validated against the export's recorded [`result_fingerprint`];
//! any remap failure or fingerprint mismatch falls back to a cold solve,
//! so restoration — like incrementality — is a pure optimisation that
//! can never change results and never turns a bad snapshot into a crash.

use crate::incremental::{
    build_front, deliver, solve_front, value_def_nodes, Front, Outcome, ProgramState, SolveError,
    SolveReport,
};
use crate::result::FlowSensitiveResult;
use crate::sfs::{run_sfs_seeded, SfsSeed};
use crate::solver::SolverKind;
use crate::{result_fingerprint, IncrementalOptions};
use std::collections::HashMap;
use vsfs_adt::govern::{Completion, Governor};
use vsfs_adt::{PointsToSet, PtsId, PtsStore};
use vsfs_ir::{FuncId, InstId, InstKind, ObjId, ValueId};

/// A completed solve's warm state, re-keyed by stable keys so it is
/// meaningful across parses and process restarts. All `u32` indices
/// point into `sets`.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmExport {
    /// Canonical name of the solver that produced this fixpoint
    /// ([`SolverKind::name`]). Restores under any other solver refuse
    /// the seed and re-solve cold — warm tables are staged-engine state
    /// and never cross a solver boundary.
    pub solver: String,
    /// [`result_fingerprint`] of the exported result; restores validate
    /// against it.
    pub fingerprint: u64,
    /// Deduplicated points-to sets, each a sorted list of object keys.
    pub sets: Vec<Vec<u64>>,
    /// `(value key, set index)` — the final top-level set of every value.
    pub pt: Vec<(u64, u32)>,
    /// `(node key, [(object key, set index)])` — non-empty `IN` tables.
    pub ins: Vec<(u64, Vec<(u64, u32)>)>,
    /// `(node key, [(object key, set index)])` — non-empty `OUT` tables.
    pub outs: Vec<(u64, Vec<(u64, u32)>)>,
    /// `(call-site instruction key, callee name)` — the resolved call
    /// graph.
    pub activations: Vec<(u64, String)>,
}

/// Exports `state`'s warm fixpoint in stable-key form, or `None` when
/// there is nothing safe to export: the analysis is degraded (a fallback
/// must never be cached as a fixpoint), the warm tables were not
/// harvested, or the key tables are ambiguous (lookups would be
/// unreliable on restore).
pub fn export_warm(state: &ProgramState) -> Option<WarmExport> {
    if !state.analysis.is_complete() || !state.keys.is_unambiguous() {
        return None;
    }
    let warm = state.warm.as_ref()?;
    let result = &state.analysis.result;
    let keys = &state.keys;

    let mut set_index: HashMap<PtsId, u32> = HashMap::new();
    let mut sets: Vec<Vec<u64>> = Vec::new();
    let mut index_of = |id: PtsId, result: &FlowSensitiveResult| -> u32 {
        *set_index.entry(id).or_insert_with(|| {
            let mut objs: Vec<u64> = result.store.iter_set(id).map(|o| keys.obj_key[o]).collect();
            objs.sort_unstable();
            sets.push(objs);
            (sets.len() - 1) as u32
        })
    };

    let mut pt: Vec<(u64, u32)> = Vec::with_capacity(state.prog.values.len());
    for (v, _) in state.prog.values.iter_enumerated() {
        pt.push((keys.value_key[v], index_of(result.pt[v], result)));
    }
    let mut export_table = |table: &vsfs_adt::IndexVec<
        vsfs_svfg::SvfgNodeId,
        Vec<(ObjId, PtsId)>,
    >|
     -> Vec<(u64, Vec<(u64, u32)>)> {
        let mut out = Vec::new();
        for (node, entries) in table.iter_enumerated() {
            if entries.is_empty() {
                continue;
            }
            let row: Vec<(u64, u32)> =
                entries.iter().map(|&(o, id)| (keys.obj_key[o], index_of(id, result))).collect();
            out.push((keys.node_key[node], row));
        }
        out
    };
    let ins = export_table(&warm.ins);
    let outs = export_table(&warm.outs);
    let activations: Vec<(u64, String)> = result
        .callgraph_edges
        .iter()
        .map(|&(call, f)| (keys.inst_key[call], state.prog.functions[f].name.clone()))
        .collect();

    Some(WarmExport {
        solver: state.solver.name().to_string(),
        fingerprint: state.fingerprint,
        sets,
        pt,
        ins,
        outs,
        activations,
    })
}

/// Rebuilds a resident [`ProgramState`] for `source` from an exported
/// warm fixpoint, skipping the flow-sensitive solve entirely when the
/// export maps cleanly and reproduces the recorded fingerprint.
///
/// The export must have been taken from a solve of the *same text* —
/// the caller (the server's snapshot layer) checks that before calling.
/// Even so, every remap is checked and the final result is validated by
/// fingerprint; any inconsistency silently degrades to a cold solve
/// (`report.restored` says which path ran). Errors are only the ones a
/// cold solve can hit: parse/verify failures and an auxiliary budget
/// trip.
pub fn restore_program(
    source: &str,
    export: &WarmExport,
    opts: IncrementalOptions,
    aux_governor: Option<&Governor>,
    fs_governor: Option<&Governor>,
) -> Result<(ProgramState, SolveReport), SolveError> {
    let front = build_front(source, opts, aux_governor)?;
    // Capability dispatch: only the staged solvers have warm state, and
    // a snapshot never seeds a different solver than the one that took
    // it (even between the bit-identical staged pair, the recorded kind
    // is authoritative). Anything else re-solves cold.
    if !opts.solver.caps().warm || SolverKind::parse(&export.solver) != Some(opts.solver) {
        return Ok(solve_front(source, front, opts, fs_governor));
    }
    let Some((seed, carried_sets)) = assemble_restore_seed(&front, export) else {
        return Ok(solve_front(source, front, opts, fs_governor));
    };
    let staged = front.staged.as_ref().expect("warm caps imply a staged front");
    let (result, completion, harvest) = run_sfs_seeded(
        &front.prog,
        &front.aux,
        &staged.mssa,
        &staged.svfg,
        opts.order.into(),
        fs_governor,
        Some(seed),
    );
    if matches!(completion, Completion::Complete)
        && result_fingerprint(&front.prog, &front.keys, &result) != export.fingerprint
    {
        // The seeded state converged to something other than what the
        // snapshot recorded — stale or corrupt beyond what the checksum
        // caught. The snapshot is worthless; solve from scratch.
        return Ok(solve_front(source, front, opts, fs_governor));
    }
    let outcome = Outcome {
        incremental: false,
        restored: true,
        dirty_nodes: 0,
        carried_sets,
        waves: 0,
        prior_seconds: 0.0,
    };
    Ok(deliver(source, front, result, completion, harvest, outcome))
}

/// Maps an export into a fully-clean [`SfsSeed`] over `front`'s id
/// spaces. `None` — forcing a cold solve — when any key fails to map,
/// which happens exactly when the export does not correspond to this
/// text (stale snapshot, hash collision, hand-edited file).
fn assemble_restore_seed(front: &Front, export: &WarmExport) -> Option<(SfsSeed, usize)> {
    let svfg = &front.staged.as_ref()?.svfg;
    if !front.keys.is_unambiguous() {
        return None;
    }
    let keys = &front.keys;

    // Intern every exported set into a fresh store.
    let mut store: PtsStore<ObjId> = PtsStore::new();
    let mut ids: Vec<PtsId> = Vec::with_capacity(export.sets.len());
    for obj_keys in &export.sets {
        let mut set: PointsToSet<ObjId> = PointsToSet::new();
        for &k in obj_keys {
            set.insert(keys.obj_of_key(k)?);
        }
        if set.len() != obj_keys.len() {
            return None; // two keys mapped to one object: not this text
        }
        ids.push(store.intern(&set));
    }
    let set_id = |idx: u32| -> Option<PtsId> { ids.get(idx as usize).copied() };

    // Top-level sets for every value with a defining node (globals and
    // never-defined values are re-seeded by the solver, as on any seeded
    // solve).
    let pt_by_key: HashMap<u64, u32> = export.pt.iter().copied().collect();
    if pt_by_key.len() != export.pt.len() {
        return None;
    }
    let def_node = value_def_nodes(&front.prog, svfg);
    let mut pt: Vec<(ValueId, PtsId)> = Vec::new();
    for (v, _) in front.prog.values.iter_enumerated() {
        if def_node[v].is_none() {
            continue;
        }
        let idx = *pt_by_key.get(&keys.value_key[v])?;
        pt.push((v, set_id(idx)?));
    }

    // IN/OUT tables: every exported row must land on a node of this
    // parse with every object resolved.
    type MappedTable = Vec<(vsfs_svfg::SvfgNodeId, Vec<(ObjId, PtsId)>)>;
    let map_table = |rows: &[(u64, Vec<(u64, u32)>)]| -> Option<MappedTable> {
        let mut out = Vec::with_capacity(rows.len());
        for (node_key, row) in rows {
            let node = keys.node_of_key(*node_key)?;
            let mut entries: Vec<(ObjId, PtsId)> = Vec::with_capacity(row.len());
            for &(obj_key, idx) in row {
                entries.push((keys.obj_of_key(obj_key)?, set_id(idx)?));
            }
            entries.sort_unstable_by_key(|&(o, _)| o);
            out.push((node, entries));
        }
        Some(out)
    };
    let ins = map_table(&export.ins)?;
    let outs = map_table(&export.outs)?;

    // Call activations: call-site instruction keys back to call insts,
    // callees by name.
    let mut inst_of_key: HashMap<u64, InstId> = HashMap::new();
    for (inst, i) in front.prog.insts.iter_enumerated() {
        if matches!(i.kind, InstKind::Call { .. })
            && inst_of_key.insert(keys.inst_key[inst], inst).is_some()
        {
            return None; // duplicate call-site key: correspondence unreliable
        }
    }
    let mut activations: Vec<(InstId, FuncId)> = Vec::with_capacity(export.activations.len());
    for (inst_key, callee_name) in &export.activations {
        let call = *inst_of_key.get(inst_key)?;
        let callee = front.prog.function_by_name(callee_name)?;
        activations.push((call, callee));
    }

    let carried_sets = ids.len();
    let clean = vsfs_adt::IndexVec::from_elem_n(true, svfg.node_count());
    Some((SfsSeed { store, pt, ins, outs, activations, clean }, carried_sets))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve_program;

    const BASE: &str = r#"
global @g

func @make() {
entry:
  %h = alloc heap H
  ret %h
}

func @main() {
entry:
  %a = call @make()
  store %a, @g
  %b = load @g
  ret
}
"#;

    #[test]
    fn export_restore_round_trip_is_fingerprint_identical() {
        let opts = IncrementalOptions::default();
        let (state, r0) = solve_program(BASE, opts, None, None).unwrap();
        let export = export_warm(&state).expect("complete solve exports");
        assert_eq!(export.fingerprint, r0.fingerprint);

        let (restored, r1) = restore_program(BASE, &export, opts, None, None).unwrap();
        assert!(r1.restored, "clean export of identical text must restore");
        assert_eq!(r1.dirty_nodes, 0);
        assert_eq!(r1.fingerprint, r0.fingerprint);
        assert_eq!(restored.fingerprint, state.fingerprint);
        assert!(restored.has_warm_state(), "a restore re-arms incrementality");
    }

    #[test]
    fn cross_solver_restore_refuses_the_seed_and_resolves_cold() {
        let opts = IncrementalOptions::default();
        let (state, r0) = solve_program(BASE, opts, None, None).unwrap();
        let export = export_warm(&state).unwrap();
        assert_eq!(export.solver, "sfs");
        let cf = IncrementalOptions { solver: SolverKind::CfgFree, ..opts };
        let (restored, r1) = restore_program(BASE, &export, cf, None, None).unwrap();
        assert!(!r1.restored, "a snapshot must not seed a different solver");
        assert_eq!(restored.solver, SolverKind::CfgFree);
        assert!(restored.svfg().is_none(), "cold-only solvers build no SVFG");
        // Same text, same answer: the solvers are query-identical, and
        // program-level stable keys make the fingerprints comparable.
        assert_eq!(r1.fingerprint, r0.fingerprint);
    }

    #[test]
    fn stale_export_falls_back_to_cold_solve() {
        let opts = IncrementalOptions::default();
        let (state, _) = solve_program(BASE, opts, None, None).unwrap();
        let export = export_warm(&state).unwrap();
        // A different text: keys no longer correspond (or the validated
        // fingerprint differs). Either way the restore must silently
        // cold-solve and still deliver the right answer.
        let edited = BASE.replace("alloc heap H", "alloc heap H2");
        let (cold, rc) = solve_program(&edited, opts, None, None).unwrap();
        let (fallback, rf) = restore_program(&edited, &export, opts, None, None).unwrap();
        assert!(!rf.restored, "stale export must not claim a restore");
        assert_eq!(rf.fingerprint, rc.fingerprint);
        assert_eq!(fallback.fingerprint, cold.fingerprint);
    }

    #[test]
    fn tampered_sets_are_rejected_by_fingerprint() {
        let opts = IncrementalOptions::default();
        let (state, r0) = solve_program(BASE, opts, None, None).unwrap();
        let mut export = export_warm(&state).unwrap();
        // Corrupt one points-to set into another *valid* one (swap in a
        // different object key that exists in this program): the remap
        // succeeds, so only the fingerprint check can catch it.
        let all_keys: Vec<u64> =
            state.prog.objects.iter_enumerated().map(|(o, _)| state.keys.obj_key[o]).collect();
        let mut tampered = false;
        'outer: for set in export.sets.iter_mut() {
            for slot in set.iter_mut() {
                if let Some(&other) = all_keys.iter().find(|&&k| k != *slot) {
                    *slot = other;
                    tampered = true;
                    break 'outer;
                }
            }
        }
        assert!(tampered, "test needs at least one non-empty set");
        for set in export.sets.iter_mut() {
            set.sort_unstable();
            set.dedup();
        }
        let (fixed, rf) = restore_program(BASE, &export, opts, None, None).unwrap();
        assert_eq!(rf.fingerprint, r0.fingerprint, "tampering must not leak into results");
        assert_eq!(fixed.fingerprint, state.fingerprint);
    }
}

//! Top-level (`P`) points-to state and on-the-fly call-graph resolution,
//! shared by the SFS and VSFS solvers.
//!
//! Top-level variables are in SSA form, so each has one global points-to
//! set (`[ADDR]`, `[PHI]`, `[CAST]`, `[FIELD-ADDR]`, `[CALL]`, `[RET]`
//! rules). This module owns those sets, the flow-sensitively resolved call
//! graph, and the plumbing that re-enqueues SVFG nodes when a value's set
//! grows. The object-flow parts of `[LOAD]`, `[STORE]`, and `[A-PROP]`
//! differ between the two solvers and live with them.
//!
//! Points-to sets are hash-consed: [`TopLevel::store`] holds one shared
//! [`PtsStore`] spanning every stage of the run (top-level values, SFS
//! `IN`/`OUT` entries, VSFS version slots), so identical sets across
//! layers are stored once and repeated unions hit the store's memo.

use std::collections::{HashMap, HashSet};
use vsfs_adt::{IndexVec, PointsToSet, PtsId, PtsStore, Worklist};
use vsfs_andersen::AndersenResult;
use vsfs_ir::{Callee, DefUse, FuncId, InstId, InstKind, ObjId, Program, ValueId};
use vsfs_svfg::{Svfg, SvfgNodeId};

/// The empty-set id of the shared store.
pub(crate) const EMPTY: PtsId = PtsStore::<ObjId>::EMPTY;

/// Shared top-level solver state.
pub struct TopLevel<'a> {
    pub(crate) prog: &'a Program,
    aux: &'a AndersenResult,
    svfg: &'a Svfg,
    defuse: DefUse,
    /// The shared hash-consed points-to store for the whole run.
    pub store: PtsStore<ObjId>,
    /// Global points-to set per top-level value (ids into [`TopLevel::store`]).
    pub pt: IndexVec<ValueId, PtsId>,
    /// Flow-sensitively activated callees per call site.
    active_callees: HashMap<InstId, Vec<FuncId>>,
    /// Flow-sensitively activated call sites per function.
    active_callers: HashMap<FuncId, Vec<InstId>>,
    activated: HashSet<(InstId, FuncId)>,
    /// Singleton objects (strong-update eligible).
    pub singletons: PointsToSet<ObjId>,
}

impl<'a> TopLevel<'a> {
    /// Creates the initial state: global pointers seeded with their
    /// storage objects, everything else empty.
    pub fn new(prog: &'a Program, aux: &'a AndersenResult, svfg: &'a Svfg) -> Self {
        let mut store = PtsStore::new();
        let mut pt: IndexVec<ValueId, PtsId> = (0..prog.values.len()).map(|_| EMPTY).collect();
        for &(g, obj) in &prog.globals {
            pt[g] = store.insert(pt[g], obj);
        }
        TopLevel {
            prog,
            aux,
            svfg,
            defuse: DefUse::compute(prog),
            store,
            pt,
            active_callees: HashMap::new(),
            active_callers: HashMap::new(),
            activated: HashSet::new(),
            singletons: vsfs_andersen::compute_singletons(prog, &aux.callgraph),
        }
    }

    /// Replaces the solver state with carried warm state: `store` becomes
    /// the shared store (global pointers are re-seeded into it, since the
    /// ids minted by [`TopLevel::new`] belong to the discarded fresh
    /// store), `pt` entries install final sets for values whose defining
    /// node survived an edit, and `activations` restores the surviving
    /// call-graph edges.
    pub(crate) fn seed_state(
        &mut self,
        store: PtsStore<ObjId>,
        pt: &[(ValueId, PtsId)],
        activations: &[(InstId, FuncId)],
    ) {
        self.store = store;
        for slot in self.pt.iter_mut() {
            *slot = EMPTY;
        }
        for &(g, obj) in &self.prog.globals {
            self.pt[g] = self.store.insert(self.pt[g], obj);
        }
        for &(v, id) in pt {
            self.pt[v] = id;
        }
        for &(call, f) in activations {
            if self.activated.insert((call, f)) {
                self.active_callees.entry(call).or_default().push(f);
                self.active_callers.entry(f).or_default().push(call);
            }
        }
    }

    /// The activated callees of `call`.
    pub fn callees(&self, call: InstId) -> &[FuncId] {
        self.active_callees.get(&call).map_or(&[], |v| v.as_slice())
    }

    /// The activated call sites of `func`.
    pub fn callers(&self, func: FuncId) -> &[InstId] {
        self.active_callers.get(&func).map_or(&[], |v| v.as_slice())
    }

    /// All activated `(call, callee)` pairs, sorted.
    pub fn callgraph_edges(&self) -> Vec<(InstId, FuncId)> {
        let mut v: Vec<(InstId, FuncId)> = self.activated.iter().copied().collect();
        v.sort();
        v
    }

    /// Iterates the points-to set of `v`, ascending.
    pub fn value_pt_iter(&self, v: ValueId) -> impl Iterator<Item = ObjId> + '_ {
        self.store.iter_set(self.pt[v])
    }

    /// Returns `true` if `o` is in the points-to set of `v`.
    pub fn value_pt_contains(&self, v: ValueId, o: ObjId) -> bool {
        self.store.contains(self.pt[v], o)
    }

    /// Unions the set behind `add` into `pt(v)`; on growth, enqueues every
    /// SVFG node that uses `v`. Returns `true` if the set grew.
    pub fn union_pt(
        &mut self,
        v: ValueId,
        add: PtsId,
        worklist: &mut Worklist<SvfgNodeId>,
    ) -> bool {
        let new = self.store.union(self.pt[v], add);
        if new == self.pt[v] {
            return false;
        }
        self.pt[v] = new;
        self.enqueue_uses(v, worklist);
        true
    }

    /// Inserts one object into `pt(v)` (the `[ADDR]`/`[FIELD-ADDR]` rules).
    pub fn insert_pt(
        &mut self,
        v: ValueId,
        obj: ObjId,
        worklist: &mut Worklist<SvfgNodeId>,
    ) -> bool {
        let new = self.store.insert(self.pt[v], obj);
        if new == self.pt[v] {
            return false;
        }
        self.pt[v] = new;
        self.enqueue_uses(v, worklist);
        true
    }

    fn enqueue_uses(&self, v: ValueId, worklist: &mut Worklist<SvfgNodeId>) {
        for &u in self.defuse.uses(v) {
            worklist.push(self.svfg.inst_node(u));
        }
    }

    /// Runs the top-level transfer function of the instruction at `node`,
    /// including call-graph activation. Newly activated `(call, callee)`
    /// pairs are appended to `newly_activated` so the caller can wire up
    /// solver-specific object flow.
    pub fn transfer(
        &mut self,
        inst: InstId,
        worklist: &mut Worklist<SvfgNodeId>,
        newly_activated: &mut Vec<(InstId, FuncId)>,
    ) {
        match &self.prog.insts[inst].kind {
            InstKind::Alloc { dst, obj } => {
                self.insert_pt(*dst, *obj, worklist);
            }
            InstKind::Copy { dst, src } => {
                let s = self.pt[*src];
                self.union_pt(*dst, s, worklist);
            }
            InstKind::Phi { dst, srcs } => {
                let mut s = EMPTY;
                for &src in srcs {
                    s = self.store.union(s, self.pt[src]);
                }
                self.union_pt(*dst, s, worklist);
            }
            InstKind::Field { dst, base, offset } => {
                let objs: Vec<ObjId> = self.store.iter_set(self.pt[*base]).collect();
                for o in objs {
                    let f = self.prog.field_object(o, *offset);
                    self.insert_pt(*dst, f, worklist);
                }
            }
            InstKind::Call { callee, args, .. } => {
                // Resolve callees flow-sensitively.
                match callee {
                    Callee::Direct(f) => {
                        self.activate(inst, *f, worklist, newly_activated);
                    }
                    Callee::Indirect(fp) => {
                        let candidates: Vec<FuncId> = self
                            .store
                            .iter_set(self.pt[*fp])
                            .filter_map(|o| self.prog.object_as_function(o))
                            .collect();
                        for f in candidates {
                            self.activate(inst, f, worklist, newly_activated);
                        }
                    }
                }
                // Bind arguments to parameters of every active callee.
                let callees = self.callees(inst).to_vec();
                for f in callees {
                    let params = self.prog.functions[f].params.clone();
                    for (a, p) in args.clone().iter().zip(params.iter()) {
                        let s = self.pt[*a];
                        self.union_pt(*p, s, worklist);
                    }
                }
            }
            InstKind::FunExit { func, ret } => {
                // Copy the returned pointer to every active caller's dst.
                if let Some(r) = ret {
                    let s = self.pt[*r];
                    let callers = self.callers(*func).to_vec();
                    for call in callers {
                        if let InstKind::Call { dst: Some(d), .. } = self.prog.insts[call].kind {
                            self.union_pt(d, s, worklist);
                        }
                    }
                }
            }
            // LOAD's top-level effect depends on object state — handled by
            // the solver. STORE, FREE, FUNENTRY have no top-level effect.
            InstKind::Load { .. }
            | InstKind::Store { .. }
            | InstKind::Free { .. }
            | InstKind::FunEntry { .. } => {}
        }
    }

    fn activate(
        &mut self,
        call: InstId,
        callee: FuncId,
        worklist: &mut Worklist<SvfgNodeId>,
        newly_activated: &mut Vec<(InstId, FuncId)>,
    ) {
        if !self.activated.insert((call, callee)) {
            return;
        }
        self.active_callees.entry(call).or_default().push(callee);
        self.active_callers.entry(callee).or_default().push(call);
        newly_activated.push((call, callee));
        let f = &self.prog.functions[callee];
        // The callee's entry and exit must (re)run: the entry to receive
        // object state, the exit to publish its return value to this new
        // caller.
        worklist.push(self.svfg.inst_node(f.entry_inst));
        worklist.push(self.svfg.inst_node(f.exit_inst));
    }

    /// Is a store through `p` a strong update of `o`? (`[SU/WU]` rule.)
    ///
    /// The decision is *static*: `o` must be a singleton and the
    /// **auxiliary** points-to set of `p` must be exactly `{o}`. Deciding
    /// on the evolving flow-sensitive set instead (as in the original
    /// SFS formulation) makes the transfer function non-monotone — the
    /// weak/strong choice can flip mid-solve, leaving schedule-dependent
    /// residue in whichever solver happened to process the store first —
    /// so the fixpoint would not be unique and SFS/VSFS could disagree
    /// on convergence order alone. With the static test both solvers
    /// compute the unique least fixpoint of the same monotone system,
    /// making the paper's equal-precision theorem (Section IV-E) hold
    /// exactly, at the cost of fewer strong updates than a
    /// flow-sensitively-narrowed test would allow. This is sound even
    /// when the flow-sensitive set of `p` is empty: `aux_pt(p) = {o}`
    /// means `p` can only ever hold `o` (or be uninitialised, which
    /// makes the store undefined behaviour at runtime).
    pub fn is_strong_update(&self, p: ValueId, o: ObjId) -> bool {
        self.singletons.contains(o) && self.aux.value_pts(p).as_singleton() == Some(o)
    }
}

//! Object versioning via meld labelling (Sections IV-B and IV-C).
//!
//! The pre-analysis runs in three steps, per the paper:
//!
//! 1. **Prelabelling** (Fig. 6): every `STORE` that may define `o` yields
//!    a fresh label for `o` (`[STORE]^P`); every δ node consumes a fresh
//!    label for each object it may propagate forward (`[OTF-CG]^P`).
//!    All other consume/yield labels start as the identity `ε`.
//! 2. **Meld labelling** (Fig. 8): per object `o`, labels propagate along
//!    `o`-labelled indirect edges — `[EXTERNAL]^V` melds the source's
//!    yield into the target's consume (unless the target is a frozen δ
//!    node), `[INTERNAL]^V` makes every non-`STORE` node yield what it
//!    consumes — until a fixed point.
//! 3. **Interning**: each distinct label (a set of prelabels, represented
//!    as a sparse bit vector melded with bitwise-or) becomes a dense
//!    *version*; `(object, version)` pairs index the global points-to
//!    table during solving. The *version reliance* edges are the
//!    deduplicated `[A-PROP]` constraints: one per `(yield version →
//!    consume version)` pair with distinct endpoints — equal endpoints
//!    need no propagation at all, which is where VSFS wins.
//!
//! # Implementation notes
//!
//! Meld labelling runs one object at a time over that object's edge
//! subgraph, using dense per-object node indices and per-object prelabel
//! numbering (labels of different objects never meld, so ids can restart
//! at 0 for each object, keeping the bit vectors small). Peak memory is
//! proportional to the largest single object subgraph, not to the whole
//! SVFG.

use std::collections::HashMap;
use std::time::Instant;
use vsfs_adt::govern::{Completion, DegradeReason, Governor, Outcome};
use vsfs_adt::par::{self, ParConfig};
use vsfs_adt::{CapacityOverflow, SbvInterner, SparseBitVector};
use vsfs_graph::{DiGraph, Sccs};
use vsfs_ir::{InstKind, ObjId, Program};
use vsfs_mssa::MemorySsa;
use vsfs_svfg::{Svfg, SvfgNodeId};

/// A dense `(object, version)` slot in the global points-to table.
pub type VersionSlot = u32;

/// Counters describing the versioning pre-analysis.
#[derive(Debug, Clone, Copy, Default)]
pub struct VersioningStats {
    /// Fresh prelabels created (stores' yields + δ nodes' consumes).
    pub prelabels: usize,
    /// Distinct `(object, version)` slots.
    pub versions: usize,
    /// Deduplicated version reliance edges.
    pub reliance_edges: usize,
    /// Indirect edges whose endpoints share a version (propagation
    /// avoided entirely).
    pub edges_collapsed: usize,
    /// Wall-clock seconds spent versioning.
    pub seconds: f64,
    /// Workers used for the per-object meld phase.
    pub par_workers: usize,
    /// Per-object tasks executed by the meld phase.
    pub par_tasks: usize,
    /// Cross-shard steals in the meld phase's work-stealing worklist.
    pub par_steals: usize,
    /// Wall-clock seconds of the parallel meld phase alone.
    pub par_seconds: f64,
}

/// The versioning tables consumed by the VSFS solver.
#[derive(Debug, Clone)]
pub struct VersionTables {
    /// Consume slot per `(node, object)`: per-node vectors sorted by
    /// object id (objects are versioned in ascending order, so pushes
    /// arrive sorted), looked up by binary search.
    consume: Vec<Vec<(ObjId, VersionSlot)>>,
    /// Yield slot per `(node, object)` where it differs from consume
    /// (stores); non-store nodes yield what they consume.
    yield_: Vec<Vec<(ObjId, VersionSlot)>>,
    /// Version reliance: `reliance[y]` lists consume slots that must
    /// include `pts[y]` (the deduplicated `[A-PROP]` constraints).
    reliance: Vec<Vec<VersionSlot>>,
    /// Number of slots.
    slot_count: u32,
    /// Stats of the pre-analysis.
    pub stats: VersioningStats,
}

impl VersionTables {
    /// Builds the version tables for `svfg` sequentially.
    pub fn build(prog: &Program, mssa: &MemorySsa, svfg: &Svfg) -> VersionTables {
        VersionTables::build_with_jobs(prog, mssa, svfg, 1)
    }

    /// Builds the version tables using up to `jobs` worker threads
    /// (`0` = all cores) for the per-object meld phase.
    ///
    /// The result is bit-identical for every `jobs` value: each object's
    /// meld labelling is computed independently with object-local
    /// version numbering, and a sequential reduce in ascending object
    /// order assigns global slot ids as prefix-sum offsets — the same
    /// ids the sequential pass assigns.
    pub fn build_with_jobs(
        prog: &Program,
        mssa: &MemorySsa,
        svfg: &Svfg,
        jobs: usize,
    ) -> VersionTables {
        VersionTables::build_with_jobs_regions(prog, mssa, svfg, jobs, None)
    }

    /// Like [`VersionTables::build_with_jobs`], but with the per-object
    /// meld tasks seeded by unification alias regions
    /// (`region_of_object`, from `vsfs_andersen::AliasRegions`): objects
    /// of the same (provably-disjoint) region start on the same worker,
    /// replacing the cost-only LPT seeding where regions exist. A pure
    /// scheduling hint — the tables are bit-identical either way.
    pub fn build_with_jobs_regions(
        prog: &Program,
        mssa: &MemorySsa,
        svfg: &Svfg,
        jobs: usize,
        regions: Option<&[u32]>,
    ) -> VersionTables {
        let start = Instant::now();
        let (mut tables, _) = build_inner(prog, mssa, svfg, ParConfig::new(jobs), regions, None);
        tables.stats.versions = tables.slot_count as usize;
        tables.stats.seconds = start.elapsed().as_secs_f64();
        tables
    }

    /// Like [`VersionTables::build_with_jobs`], but under a [`Governor`]:
    /// worker panics are isolated, the parallel meld phase stops at
    /// cancellation, and the sequential reduce checks the budget once per
    /// object.
    ///
    /// On a trip the outcome is `Degraded` and the tables are replaced by
    /// structurally valid *empty* tables (no slots, no reliance edges) —
    /// partial version numbering is useless for solving, so callers must
    /// treat a degraded outcome as "no flow-sensitive result" and fall
    /// back (see `run_vsfs_governed`).
    pub fn build_governed(
        prog: &Program,
        mssa: &MemorySsa,
        svfg: &Svfg,
        jobs: usize,
        governor: &Governor,
    ) -> Outcome<VersionTables> {
        let start = Instant::now();
        let (mut tables, completion) =
            build_inner(prog, mssa, svfg, ParConfig::new(jobs), None, Some(governor));
        tables.stats.versions = tables.slot_count as usize;
        tables.stats.seconds = start.elapsed().as_secs_f64();
        Outcome { result: tables, completion }
    }

    /// The version slot consumed by `node` for `obj`, if `(node, obj)`
    /// participates in any indirect flow.
    pub fn consume_slot(&self, node: SvfgNodeId, obj: ObjId) -> Option<VersionSlot> {
        let list = &self.consume[node.index()];
        list.binary_search_by_key(&obj, |&(o, _)| o).ok().map(|i| list[i].1)
    }

    /// The version slot yielded by `node` for `obj`.
    pub fn yield_slot(&self, node: SvfgNodeId, obj: ObjId) -> Option<VersionSlot> {
        let list = &self.yield_[node.index()];
        list.binary_search_by_key(&obj, |&(o, _)| o)
            .ok()
            .map(|i| list[i].1)
            .or_else(|| self.consume_slot(node, obj))
    }

    /// Every `(object, version)` pair `node` consumes, sorted by object.
    pub fn consume_entries(&self, node: SvfgNodeId) -> &[(ObjId, VersionSlot)] {
        &self.consume[node.index()]
    }

    /// Every `(object, version)` pair `node` yields, sorted by object.
    /// Nodes that relay an object unchanged appear only in
    /// [`VersionTables::consume_entries`].
    pub fn yield_entries(&self, node: SvfgNodeId) -> &[(ObjId, VersionSlot)] {
        &self.yield_[node.index()]
    }

    /// Total `(object, version)` slots.
    pub fn slot_count(&self) -> u32 {
        self.slot_count
    }

    /// The reliance successors of slot `y`.
    pub fn reliance(&self, y: VersionSlot) -> &[VersionSlot] {
        &self.reliance[y as usize]
    }

    /// Adds a reliance edge discovered during solving (on-the-fly call
    /// graph activation); returns `true` if new.
    pub fn add_reliance(&mut self, y: VersionSlot, c: VersionSlot) -> bool {
        if y == c || self.reliance[y as usize].contains(&c) {
            return false;
        }
        self.reliance[y as usize].push(c);
        true
    }
}

/// Work area reused across objects.
#[derive(Default)]
struct ObjArea {
    /// Local node index per SVFG node involved with the current object
    /// (dense; `u32::MAX` = absent; reset via the `nodes` list).
    local_of: Vec<u32>,
    nodes: Vec<SvfgNodeId>,
    /// Consume label per local node.
    consume: Vec<SparseBitVector>,
    /// Yield prelabel per local node (stores only), else `None` —
    /// `[INTERNAL]^V` says such nodes yield their consume label.
    yield_pre: Vec<Option<SparseBitVector>>,
    frozen: Vec<bool>,
    is_store: Vec<bool>,
    succs: Vec<Vec<u32>>,
    queued: Vec<bool>,
}

impl ObjArea {
    fn with_node_capacity(n: usize) -> Self {
        ObjArea { local_of: vec![u32::MAX; n], ..ObjArea::default() }
    }

    fn clear(&mut self) {
        for &n in &self.nodes {
            self.local_of[n.index()] = u32::MAX;
        }
        self.nodes.clear();
        self.consume.clear();
        self.yield_pre.clear();
        self.frozen.clear();
        self.is_store.clear();
        self.succs.clear();
        self.queued.clear();
    }

    fn local(&mut self, n: SvfgNodeId) -> u32 {
        let slot = self.local_of[n.index()];
        if slot != u32::MAX {
            return slot;
        }
        let l = self.nodes.len() as u32;
        self.local_of[n.index()] = l;
        self.nodes.push(n);
        self.consume.push(SparseBitVector::new());
        self.yield_pre.push(None);
        self.frozen.push(false);
        self.is_store.push(false);
        self.succs.push(Vec::new());
        self.queued.push(false);
        l
    }
}

/// Structurally valid tables with no versions at all — the degraded
/// placeholder: every lookup misses, `slot_count` is 0.
fn empty_tables(node_count: usize) -> VersionTables {
    VersionTables {
        consume: vec![Vec::new(); node_count],
        yield_: vec![Vec::new(); node_count],
        reliance: Vec::new(),
        slot_count: 0,
        stats: VersioningStats::default(),
    }
}

fn build_inner(
    prog: &Program,
    mssa: &MemorySsa,
    svfg: &Svfg,
    par: ParConfig,
    regions: Option<&[u32]>,
    governor: Option<&Governor>,
) -> (VersionTables, Completion) {
    let num_objs = prog.objects.len();
    // Group edges by object (dense tables: object ids index directly).
    // Count pass then exact-sized fill: the grouped SVFG edges expand to
    // one (from, to) entry per labelled object, stored in a flat arena
    // with per-object offsets — no per-object Vec doubling slack, which
    // dominated this pass's transient footprint.
    let mut offsets = vec![0u32; num_objs + 1];
    for n in svfg.node_ids() {
        for &(_, set) in svfg.indirect_succs(n) {
            for &o in svfg.obj_set(set) {
                offsets[o.index() + 1] += 1;
            }
        }
    }
    for i in 0..num_objs {
        offsets[i + 1] += offsets[i];
    }
    let zero = (SvfgNodeId::new(0), SvfgNodeId::new(0));
    let mut edge_arena = vec![zero; offsets[num_objs] as usize];
    let mut cursor: Vec<u32> = offsets[..num_objs].to_vec();
    for n in svfg.node_ids() {
        for &(t, set) in svfg.indirect_succs(n) {
            for &o in svfg.obj_set(set) {
                let c = &mut cursor[o.index()];
                edge_arena[*c as usize] = (n, t);
                *c += 1;
            }
        }
    }
    drop(cursor);
    let edges_of = |o: usize| &edge_arena[offsets[o] as usize..offsets[o + 1] as usize];
    // Group prelabel sites by object: stores' yields and δ consumes.
    // (Fig. 6 — [STORE]^P and [OTF-CG]^P.)
    let mut store_sites: Vec<Vec<SvfgNodeId>> = vec![Vec::new(); num_objs];
    let mut delta_sites: Vec<Vec<SvfgNodeId>> = vec![Vec::new(); num_objs];
    for (i, inst) in prog.insts.iter_enumerated() {
        match inst.kind {
            InstKind::Store { .. } => {
                let n = svfg.inst_node(i);
                for chi in mssa.chis(i) {
                    store_sites[chi.obj.index()].push(n);
                }
            }
            InstKind::FunEntry { .. } => {
                let n = svfg.inst_node(i);
                if svfg.is_delta(n) {
                    for chi in mssa.chis(i) {
                        delta_sites[chi.obj.index()].push(n);
                    }
                }
            }
            InstKind::Call { .. } => {
                let n = svfg.callret_node(i);
                if svfg.is_delta(n) {
                    for chi in mssa.chis(i) {
                        delta_sites[chi.obj.index()].push(n);
                    }
                }
            }
            _ => {}
        }
    }

    // Ascending object order keeps every node's slot list sorted.
    let objs: Vec<ObjId> = (0..num_objs)
        .map(|i| ObjId::new(i as u32))
        .filter(|&o| {
            !edges_of(o.index()).is_empty()
                || !store_sites[o.index()].is_empty()
                || !delta_sites[o.index()].is_empty()
        })
        .collect();

    // Per-object meld labelling is independent by construction (labels of
    // different objects never meld), so objects become parallel tasks.
    // Each task numbers its versions object-locally; the ordered reduce
    // below turns local ids into global slot ids by prefix-sum offset,
    // reproducing the sequential numbering exactly — the tables are
    // bit-identical for every worker count.
    let node_count = svfg.node_count();
    let cost = |i: usize| {
        let oi = objs[i].index();
        (edges_of(oi).len() + store_sites[oi].len() + delta_sites[oi].len()) as u64
    };
    let objs_ref = &objs;
    let edges_ref = &edges_of;
    let stores_ref = &store_sites;
    let deltas_ref = &delta_sites;
    let worker = |area: &mut ObjArea, i: usize| {
        let oi = objs_ref[i].index();
        process_object(edges_ref(oi), &stores_ref[oi], &deltas_ref[oi], area)
    };
    let init = || ObjArea::with_node_capacity(node_count);
    let run = match regions {
        // Alias-region seeding: objects whose version slots can hold
        // overlapping sets share a worker's cache. `u64::MAX` groups the
        // never-pointed-to objects together.
        Some(region_of_object) => par::try_run_tasks_grouped(
            par,
            objs.len(),
            cost,
            |i| region_of_object.get(objs_ref[i].index()).map_or(u64::MAX, |&r| u64::from(r)),
            governor,
            init,
            worker,
        ),
        None => par::try_run_tasks_with(par, objs.len(), cost, governor, init, worker),
    };
    let (outcomes, pstats) = match run {
        Ok(out) => out,
        Err(interrupt) => match governor {
            Some(g) => {
                g.note_interrupt(&interrupt);
                return (empty_tables(node_count), g.completion());
            }
            None => {
                let f = interrupt.faults.first().expect("interrupt without faults or governor");
                panic!("parallel {f}");
            }
        },
    };

    // Ordered reduce: ascending object order keeps every node's slot
    // list sorted by object and assigns global ids deterministically.
    let mut consume_slots: Vec<Vec<(ObjId, VersionSlot)>> = vec![Vec::new(); node_count];
    let mut yield_slots: Vec<Vec<(ObjId, VersionSlot)>> = vec![Vec::new(); node_count];
    let mut reliance: Vec<Vec<VersionSlot>> = Vec::new();
    let mut next_slot: u32 = 0;
    let mut stats = VersioningStats::default();
    for (i, out) in outcomes.iter().enumerate() {
        // One checkpoint per object: the reduce is sequential, so the
        // trip point is identical for every `jobs` value.
        if governor.is_some_and(|g| g.check(1).is_err()) {
            let g = governor.expect("checked above");
            return (empty_tables(node_count), g.completion());
        }
        // A worker that exhausted its label id space reports a typed
        // error instead of panicking; the first one (in ascending object
        // order, so the same for every `jobs` value) degrades the run.
        let out = match out {
            Ok(out) => out,
            Err(overflow) => match governor {
                Some(g) => {
                    g.trip(DegradeReason::CapacityExhausted { resource: "version interner" });
                    return (empty_tables(node_count), g.completion());
                }
                None => panic!("versioning object {}: {overflow}", objs[i].index()),
            },
        };
        let o = objs[i];
        let base = next_slot;
        next_slot += out.local_slots;
        reliance.resize_with(next_slot as usize, Vec::new);
        for &(n, c, y) in &out.nodes {
            consume_slots[n.index()].push((o, base + c));
            if y != c {
                yield_slots[n.index()].push((o, base + y));
            }
        }
        for &(y, c) in &out.reliance {
            reliance[(base + y) as usize].push(base + c);
        }
        stats.prelabels += out.prelabels;
        stats.reliance_edges += out.reliance.len();
        stats.edges_collapsed += out.edges_collapsed;
    }
    stats.par_workers = pstats.workers;
    stats.par_tasks = pstats.tasks;
    stats.par_steals = pstats.steals;
    stats.par_seconds = pstats.wall.as_secs_f64();

    let tables = VersionTables {
        consume: consume_slots,
        yield_: yield_slots,
        reliance,
        slot_count: next_slot,
        stats,
    };
    let completion = governor.map_or(Completion::Complete, Governor::completion);
    if completion.is_complete() {
        (tables, completion)
    } else {
        // A trip in an earlier (shared-governor) stage makes these tables
        // untrustworthy too; return the loud placeholder.
        (empty_tables(node_count), completion)
    }
}

/// One object's meld-labelling outcome, with object-local version ids.
struct ObjOutcome {
    /// `(node, consume slot, yield slot)` per participating node, in
    /// local-node discovery order.
    nodes: Vec<(SvfgNodeId, u32, u32)>,
    /// Number of distinct object-local version slots.
    local_slots: u32,
    /// Deduplicated reliance edges `(yield slot → consume slot)`, in
    /// discovery order.
    reliance: Vec<(u32, u32)>,
    /// Fresh prelabels created for this object.
    prelabels: usize,
    /// Edges whose endpoints share a version (no propagation needed).
    edges_collapsed: usize,
}

/// Meld-labels one object's SVFG subgraph. Pure in its inputs: the
/// outcome depends only on `edges`/`stores`/`deltas`, never on other
/// objects or on scheduling, which is what makes the per-object phase
/// safely parallel.
///
/// Returns [`CapacityOverflow`] when the per-object label interner runs
/// out of ids; the ordered reduce in [`build_inner`] surfaces it through
/// the governed-degradation path instead of panicking mid-worker.
fn process_object(
    edges: &[(SvfgNodeId, SvfgNodeId)],
    stores: &[SvfgNodeId],
    deltas: &[SvfgNodeId],
    area: &mut ObjArea,
) -> Result<ObjOutcome, CapacityOverflow> {
    area.clear();
    // Build the local subgraph. SVFG edges are already unique per
    // (from, to, object), so no dedup is needed here.
    for &(f, t) in edges {
        let lf = area.local(f);
        let lt = area.local(t);
        area.succs[lf as usize].push(lt);
    }
    // Prelabels: per-object numbering starts at 0.
    let mut next_pre: u32 = 0;
    for &n in stores {
        let l = area.local(n) as usize;
        area.is_store[l] = true;
        let mut s = SparseBitVector::new();
        s.insert(next_pre);
        next_pre += 1;
        area.yield_pre[l] = Some(s);
    }
    for &n in deltas {
        let l = area.local(n) as usize;
        area.frozen[l] = true;
        let mut s = SparseBitVector::new();
        s.insert(next_pre);
        next_pre += 1;
        area.consume[l] = s;
    }

    // Meld labelling ([EXTERNAL]^V + [INTERNAL]^V) in one linear
    // pass instead of a chaotic fixpoint. Observation: only *relay*
    // nodes (non-store, non-frozen) propagate their consume label
    // onward; stores emit a constant fresh prelabel and frozen δ
    // nodes emit their constant consume prelabel, regardless of what
    // reaches them. So:
    //
    //  1. condense the relay-edge subgraph (edges whose source is a
    //     relay node) into SCCs — all relay members of an SCC end
    //     with the same label;
    //  2. treat every store/frozen out-edge as a constant *injection*
    //     into its target's component;
    //  3. fold components in topological order: each component's
    //     label is the meld of its injections and its predecessor
    //     components' labels — one union per edge, total O(E) melds.
    let n_local = area.nodes.len();
    let mut relay_graph: DiGraph<u32> = DiGraph::with_nodes(n_local);
    for (li, succs) in area.succs.iter().enumerate() {
        let src_is_const = area.yield_pre[li].is_some() || area.frozen[li];
        if src_is_const {
            continue;
        }
        for &t in succs {
            let ti = t as usize;
            if ti != li && !area.frozen[ti] {
                relay_graph.add_edge(li as u32, t);
            }
        }
    }
    let sccs = Sccs::compute(&relay_graph);
    let n_comps = sccs.count();
    let mut comp_label: Vec<SparseBitVector> = vec![SparseBitVector::new(); n_comps];
    // Injections from constant sources.
    for (li, succs) in area.succs.iter().enumerate() {
        let constant: Option<&SparseBitVector> = if let Some(y) = &area.yield_pre[li] {
            Some(y)
        } else if area.frozen[li] {
            Some(&area.consume[li])
        } else {
            None
        };
        let Some(constant) = constant else { continue };
        for &t in succs {
            let ti = t as usize;
            if ti != li && !area.frozen[ti] {
                comp_label[sccs.component(t) as usize].union_with(constant);
            }
        }
    }
    // Fold in topological order (predecessor components have larger
    // ids in `Sccs`' reverse-topological numbering).
    for c in (0..n_comps as u32).rev() {
        if comp_label[c as usize].is_empty() {
            continue;
        }
        // Propagate this component's finished label to successor
        // components (which have smaller ids and are processed later).
        for &m in sccs.members(c) {
            for &t in &area.succs[m as usize] {
                let ti = t as usize;
                if area.frozen[ti] {
                    continue;
                }
                // Only relay members forward the component label.
                if area.yield_pre[m as usize].is_some() || area.frozen[m as usize] {
                    continue;
                }
                let tc = sccs.component(t);
                if tc != c {
                    let (src, dst) = (c as usize, tc as usize);
                    let (a, b) = if src < dst {
                        let (lo, hi) = comp_label.split_at_mut(dst);
                        (&lo[src], &mut hi[0])
                    } else {
                        let (lo, hi) = comp_label.split_at_mut(src);
                        (&hi[0], &mut lo[dst])
                    };
                    b.union_with(a);
                }
            }
        }
    }
    // Write back consume labels for non-frozen nodes.
    for li in 0..n_local {
        if area.frozen[li] {
            continue;
        }
        let c = sccs.component(li as u32) as usize;
        if !comp_label[c].is_empty() {
            area.consume[li].union_with(&comp_label[c]);
        }
    }

    // Intern labels -> object-local versions.
    let mut interner = SbvInterner::new();
    let mut slot_of_label: HashMap<u32, u32> = HashMap::new();
    let mut local_slots: u32 = 0;
    let mut slot = |label: &SparseBitVector,
                    interner: &mut SbvInterner,
                    slot_of_label: &mut HashMap<u32, u32>|
     -> Result<u32, CapacityOverflow> {
        let lid = interner.try_intern(label)?;
        Ok(*slot_of_label.entry(lid).or_insert_with(|| {
            let s = local_slots;
            local_slots += 1;
            s
        }))
    };

    let mut c_slot: Vec<u32> = Vec::with_capacity(area.nodes.len());
    let mut y_slot: Vec<u32> = Vec::with_capacity(area.nodes.len());
    for li in 0..area.nodes.len() {
        let c = slot(&area.consume[li], &mut interner, &mut slot_of_label)?;
        c_slot.push(c);
        let y = match &area.yield_pre[li] {
            Some(yl) => slot(yl, &mut interner, &mut slot_of_label)?,
            None => c,
        };
        y_slot.push(y);
    }
    // Reliance edges ([A-PROP], deduplicated; skipped when shared).
    let mut per_y: Vec<Vec<u32>> = vec![Vec::new(); local_slots as usize];
    let mut rel: Vec<(u32, u32)> = Vec::new();
    let mut edges_collapsed = 0usize;
    for (li, &y) in y_slot.iter().enumerate() {
        for &t in &area.succs[li] {
            let c = c_slot[t as usize];
            if y == c {
                edges_collapsed += 1;
                continue;
            }
            if per_y[y as usize].contains(&c) {
                edges_collapsed += 1;
            } else {
                per_y[y as usize].push(c);
                rel.push((y, c));
            }
        }
    }
    Ok(ObjOutcome {
        nodes: area.nodes.iter().enumerate().map(|(li, &n)| (n, c_slot[li], y_slot[li])).collect(),
        local_slots,
        reliance: rel,
        prelabels: next_pre as usize,
        edges_collapsed,
    })
}

#[cfg(test)]
mod meld_reference_tests {
    //! Differential test: the one-pass SCC meld must match a naive
    //! chaotic-iteration reference on random labelled subgraphs.
    use vsfs_adt::SparseBitVector;
    use vsfs_testkit::gen;

    /// Reference: chaotic iteration of [EXTERNAL]^V/[INTERNAL]^V.
    fn reference_meld(
        n: usize,
        edges: &[(usize, usize)],
        store_yield: &[Option<u32>],
        frozen_pre: &[Option<u32>],
    ) -> Vec<SparseBitVector> {
        let mut consume = vec![SparseBitVector::new(); n];
        for (i, f) in frozen_pre.iter().enumerate() {
            if let Some(l) = f {
                consume[i].insert(*l);
            }
        }
        loop {
            let mut changed = false;
            for &(f, tt) in edges {
                if f == tt || frozen_pre[tt].is_some() {
                    continue;
                }
                let y = match store_yield[f] {
                    Some(l) => {
                        let mut s = SparseBitVector::new();
                        s.insert(l);
                        s
                    }
                    None => consume[f].clone(),
                };
                if consume[tt].union_with(&y) {
                    changed = true;
                }
            }
            if !changed {
                return consume;
            }
        }
    }

    /// The production one-pass algorithm, extracted over the same input
    /// shape (mirrors `build_inner`'s meld stage).
    fn scc_meld(
        n: usize,
        edges: &[(usize, usize)],
        store_yield: &[Option<u32>],
        frozen_pre: &[Option<u32>],
    ) -> Vec<SparseBitVector> {
        use vsfs_graph::{DiGraph, Sccs};
        let mut consume = vec![SparseBitVector::new(); n];
        for (i, f) in frozen_pre.iter().enumerate() {
            if let Some(l) = f {
                consume[i].insert(*l);
            }
        }
        let mut relay: DiGraph<u32> = DiGraph::with_nodes(n);
        for &(f, tt) in edges {
            let src_const = store_yield[f].is_some() || frozen_pre[f].is_some();
            if !src_const && f != tt && frozen_pre[tt].is_none() {
                relay.add_edge(f as u32, tt as u32);
            }
        }
        let sccs = Sccs::compute(&relay);
        let mut comp_label = vec![SparseBitVector::new(); sccs.count()];
        for &(f, tt) in edges {
            let constant = match (store_yield[f], frozen_pre[f]) {
                (Some(l), _) | (None, Some(l)) => Some(l),
                _ => None,
            };
            if let Some(l) = constant {
                if f != tt && frozen_pre[tt].is_none() {
                    comp_label[sccs.component(tt as u32) as usize].insert(l);
                }
            }
        }
        for c in (0..sccs.count() as u32).rev() {
            if comp_label[c as usize].is_empty() {
                continue;
            }
            for &m in sccs.members(c) {
                let mi = m as usize;
                if store_yield[mi].is_some() || frozen_pre[mi].is_some() {
                    continue;
                }
                for &(f, tt) in edges.iter().filter(|&&(f, _)| f == mi) {
                    let _ = f;
                    if tt == mi || frozen_pre[tt].is_some() {
                        continue;
                    }
                    let tc = sccs.component(tt as u32);
                    if tc != c {
                        let (src, dst) = (c as usize, tc as usize);
                        let (a, b) = if src < dst {
                            let (lo, hi) = comp_label.split_at_mut(dst);
                            (&lo[src], &mut hi[0])
                        } else {
                            let (lo, hi) = comp_label.split_at_mut(src);
                            (&hi[0], &mut lo[dst])
                        };
                        b.union_with(a);
                    }
                }
            }
        }
        for i in 0..n {
            if frozen_pre[i].is_some() {
                continue;
            }
            let c = sccs.component(i as u32) as usize;
            if !comp_label[c].is_empty() {
                consume[i].union_with(&comp_label[c]);
            }
        }
        consume
    }

    #[test]
    fn one_pass_matches_reference() {
        vsfs_testkit::check("versioning::one_pass_matches_reference", |rng| {
            let n = rng.gen_range(2usize..12);
            let raw_edges =
                gen::vec_with(rng, 0..40, |r| (r.gen_range(0usize..12), r.gen_range(0usize..12)));
            let kinds = gen::vec_with(rng, 12..12, |r| r.gen_range(0u8..4));
            let edges: Vec<(usize, usize)> =
                raw_edges.into_iter().map(|(a, b)| (a % n, b % n)).collect();
            let mut store_yield = vec![None; n];
            let mut frozen_pre = vec![None; n];
            let mut next = 0u32;
            for i in 0..n {
                match kinds[i] {
                    1 => {
                        store_yield[i] = Some(next);
                        next += 1;
                    }
                    2 => {
                        frozen_pre[i] = Some(next);
                        next += 1;
                    }
                    _ => {}
                }
            }
            let want = reference_meld(n, &edges, &store_yield, &frozen_pre);
            let got = scc_meld(n, &edges, &store_yield, &frozen_pre);
            for i in 0..n {
                assert_eq!(&got[i], &want[i], "node {i} labels differ");
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsfs_ir::parse_program;

    fn pipeline(src: &str) -> (Program, MemorySsa, Svfg, VersionTables) {
        let prog = parse_program(src).unwrap();
        vsfs_ir::verify::verify(&prog).unwrap();
        let aux = vsfs_andersen::analyze(&prog);
        let mssa = MemorySsa::build(&prog, &aux);
        let svfg = Svfg::build(&prog, &aux, &mssa);
        let vt = VersionTables::build(&prog, &mssa, &svfg);
        (prog, mssa, svfg, vt)
    }

    fn inst(prog: &Program, m: &str, nth: usize) -> vsfs_ir::InstId {
        prog.insts
            .iter_enumerated()
            .filter(|(_, i)| i.kind.mnemonic() == m)
            .map(|(id, _)| id)
            .nth(nth)
            .unwrap()
    }

    fn the_obj(prog: &Program, name: &str) -> ObjId {
        prog.objects.iter_enumerated().find(|(_, o)| o.name == name).map(|(id, _)| id).unwrap()
    }

    /// The paper's motivating example (Fig. 2 / 5 / 9): two stores feeding
    /// chains of loads. Loads fed only by store 1 share its yielded
    /// version; loads reached by both stores share the melded version.
    #[test]
    fn versioning_paper_example_sharing() {
        let (prog, _, svfg, vt) = pipeline(
            r#"
            func @main() {
            entry:
              %s = alloc stack O array
              %a = alloc heap A
              %b = alloc heap B
              store %a, %s      // l1: yields k1
              %x2 = load %s     // l2 analog: consumes k1
              %x3 = load %s     // l3 analog: consumes k1
              store %b, %s      // l2-store: consumes k1, yields k2
              %x4 = load %s     // consumes k2
              %x5 = load %s     // consumes k2
              ret
            }
            "#,
        );
        let o = the_obj(&prog, "O");
        let s1 = svfg.inst_node(inst(&prog, "store", 0));
        let s2 = svfg.inst_node(inst(&prog, "store", 1));
        let l2 = svfg.inst_node(inst(&prog, "load", 0));
        let l3 = svfg.inst_node(inst(&prog, "load", 1));
        let l4 = svfg.inst_node(inst(&prog, "load", 2));
        let l5 = svfg.inst_node(inst(&prog, "load", 3));
        // Loads after store 1 share its yielded version.
        let y1 = vt.yield_slot(s1, o).unwrap();
        assert_eq!(vt.consume_slot(l2, o), Some(y1));
        assert_eq!(vt.consume_slot(l3, o), Some(y1));
        // Store 2 consumes y1 but yields a distinct fresh version.
        assert_eq!(vt.consume_slot(s2, o), Some(y1));
        let y2 = vt.yield_slot(s2, o).unwrap();
        assert_ne!(y1, y2);
        // Loads after store 2 share y2.
        assert_eq!(vt.consume_slot(l4, o), Some(y2));
        assert_eq!(vt.consume_slot(l5, o), Some(y2));
        // Fewer reliance constraints than SVFG edges for o.
        assert!(vt.stats.edges_collapsed > 0, "shared versions must collapse edges");
    }

    /// Diamond variant: loads on the join side consume the *meld* of the
    /// two stores' versions and share it (κ1 ⊙ κ2 in the paper).
    #[test]
    fn versioning_meld_at_joins() {
        let (prog, _, svfg, vt) = pipeline(
            r#"
            func @main() {
            entry:
              %s = alloc stack O array
              %a = alloc heap A
              %b = alloc heap B
              store %a, %s
              br l, r
            l:
              store %b, %s
              goto join
            r:
              goto join
            join:
              %x = load %s
              %y = load %s
              ret
            }
            "#,
        );
        let o = the_obj(&prog, "O");
        let lx = svfg.inst_node(inst(&prog, "load", 0));
        let ly = svfg.inst_node(inst(&prog, "load", 1));
        let cx = vt.consume_slot(lx, o).unwrap();
        assert_eq!(vt.consume_slot(ly, o), Some(cx), "both loads share the meld");
        let s1 = svfg.inst_node(inst(&prog, "store", 0));
        let s2 = svfg.inst_node(inst(&prog, "store", 1));
        // The meld differs from both stores' yields (it merges them).
        assert_ne!(Some(cx), vt.yield_slot(s1, o));
        assert_ne!(Some(cx), vt.yield_slot(s2, o));
    }

    /// δ nodes keep their frozen prelabels: the FUNENTRY of an
    /// address-taken function must not have its consume version melded.
    #[test]
    fn delta_consume_is_frozen() {
        let (prog, _, svfg, vt) = pipeline(
            r#"
            global @g
            func @cb() {
            entry:
              %x = load @g
              ret
            }
            func @main() {
            entry:
              %h = alloc heap H
              store %h, @g
              %fp = funaddr @cb
              icall %fp()
              ret
            }
            "#,
        );
        let g = the_obj(&prog, "g");
        let cb = prog.function_by_name("cb").unwrap();
        let entry = svfg.inst_node(prog.functions[cb].entry_inst);
        assert!(svfg.is_delta(entry));
        let c_entry = vt.consume_slot(entry, g).expect("delta prelabel exists");
        let store = svfg.inst_node(inst(&prog, "store", 0));
        // The store's yield must not equal the frozen delta consume: no
        // static meld happened.
        assert_ne!(vt.yield_slot(store, g), Some(c_entry));
        // The load inside cb consumes the entry's (frozen) version.
        let load = svfg.inst_node(inst(&prog, "load", 0));
        assert_eq!(vt.consume_slot(load, g), Some(c_entry));
    }

    /// Nodes unreachable from any store share the ε version (empty
    /// points-to set).
    #[test]
    fn untouched_objects_share_epsilon() {
        let (prog, _, svfg, vt) = pipeline(
            r#"
            global @g
            func @main() {
            entry:
              %x = load @g
              %y = load @g
              ret
            }
            "#,
        );
        let g = the_obj(&prog, "g");
        let lx = svfg.inst_node(inst(&prog, "load", 0));
        let ly = svfg.inst_node(inst(&prog, "load", 1));
        match (vt.consume_slot(lx, g), vt.consume_slot(ly, g)) {
            (Some(a), Some(b)) => assert_eq!(a, b),
            // Both entirely unversioned is also fine (no indirect flow at
            // all means the loads read the empty initial state).
            (None, None) => {}
            other => panic!("asymmetric versions: {other:?}"),
        }
    }

    /// Distinct objects never share slots even when their label bit
    /// patterns coincide (per-object prelabel numbering restarts at 0).
    #[test]
    fn per_object_numbering_does_not_alias_objects() {
        let (prog, _, svfg, vt) = pipeline(
            r#"
            func @main() {
            entry:
              %p = alloc stack P
              %q = alloc stack Q
              %a = alloc heap A
              store %a, %p
              store %a, %q
              %x = load %p
              %y = load %q
              ret
            }
            "#,
        );
        let p = the_obj(&prog, "P");
        let q = the_obj(&prog, "Q");
        let lx = svfg.inst_node(inst(&prog, "load", 0));
        let ly = svfg.inst_node(inst(&prog, "load", 1));
        let cp = vt.consume_slot(lx, p).unwrap();
        let cq = vt.consume_slot(ly, q).unwrap();
        assert_ne!(cp, cq, "slots are per (object, version)");
    }
}

//! Results and statistics shared by both flow-sensitive solvers.

use vsfs_adt::govern::{Completion, DegradeReason};
use vsfs_adt::{FlatReader, IndexVec, PointsToSet, PtsId, PtsStore, PtsStoreStats};
use vsfs_andersen::{AndersenResult, UnifyResult};
use vsfs_ir::{FuncId, InstId, ObjId, Program, ValueId};

/// The output of a flow-sensitive analysis run.
///
/// Points-to sets are hash-consed: the result carries the run's
/// [`PtsStore`] and one [`PtsId`] per value, and resolves ids back to
/// sets at the API boundary ([`FlowSensitiveResult::value_pts`]) so
/// external behaviour is unchanged.
#[derive(Debug, Clone)]
pub struct FlowSensitiveResult {
    /// The hash-consed store the ids below point into.
    pub(crate) store: PtsStore<ObjId>,
    /// Flat read-back cache for the sets the API lends out.
    pub(crate) flat: FlatReader<ObjId>,
    /// Final (global) points-to set id of every top-level value.
    pub(crate) pt: IndexVec<ValueId, PtsId>,
    /// Call-graph edges resolved flow-sensitively, sorted.
    pub callgraph_edges: Vec<(InstId, FuncId)>,
    /// Counters for the run.
    pub stats: SolveStats,
}

impl FlowSensitiveResult {
    /// Packages a solver's final state.
    pub(crate) fn new(
        store: PtsStore<ObjId>,
        pt: IndexVec<ValueId, PtsId>,
        callgraph_edges: Vec<(InstId, FuncId)>,
        stats: SolveStats,
    ) -> FlowSensitiveResult {
        let flat = FlatReader::new(&store, pt.iter().copied());
        FlowSensitiveResult { store, flat, pt, callgraph_edges, stats }
    }

    /// The points-to set of `v`.
    pub fn value_pts(&self, v: ValueId) -> &PointsToSet<ObjId> {
        self.flat.get(self.pt[v])
    }

    /// The epoch of the run's hash-consed store: 0 for a from-scratch
    /// solve, incremented by each incremental re-solve that carried
    /// state forward (`crate::incremental`).
    pub fn store_epoch(&self) -> u64 {
        self.store.epoch()
    }

    /// Repackages the auxiliary Andersen analysis as a
    /// `FlowSensitiveResult` — the *sound fallback* when the
    /// flow-sensitive stage is cut short by a budget or a worker fault.
    ///
    /// Andersen is flow-insensitive, so it over-approximates every
    /// flow-sensitive answer: for each value, the set here is a superset
    /// of what a completed VSFS/SFS run would report, and the call graph
    /// contains every flow-sensitively resolvable edge. Stats are zeroed
    /// (no flow-sensitive solve happened).
    pub fn from_andersen(prog: &Program, aux: &AndersenResult) -> FlowSensitiveResult {
        let mut store = PtsStore::new();
        let pt: IndexVec<ValueId, PtsId> =
            prog.values.indices().map(|v| store.intern(aux.value_pts(v))).collect();
        let mut callgraph_edges: Vec<(InstId, FuncId)> = aux.callgraph.edges().collect();
        callgraph_edges.sort_unstable();
        let stats = SolveStats { store: store.stats(), ..SolveStats::default() };
        FlowSensitiveResult::new(store, pt, callgraph_edges, stats)
    }

    /// Repackages a unification analysis as a `FlowSensitiveResult` —
    /// the *second* sound fallback rung, used when even the Andersen
    /// stage was cut short by its budget.
    ///
    /// Unification over-approximates Andersen (its result is the least
    /// inclusion solution of the *collapsed* constraint graph), which
    /// in turn over-approximates every flow-sensitive answer — so the
    /// sets and call graph here remain supersets of the complete
    /// flow-sensitive result, just coarser than the first rung's.
    pub fn from_unify(prog: &Program, unify: &UnifyResult) -> FlowSensitiveResult {
        let mut store = PtsStore::new();
        let pt: IndexVec<ValueId, PtsId> =
            prog.values.indices().map(|v| store.intern(unify.value_pts(v))).collect();
        let mut callgraph_edges: Vec<(InstId, FuncId)> = unify.callgraph.edges().collect();
        callgraph_edges.sort_unstable();
        let stats = SolveStats {
            store: store.stats(),
            solve_seconds: unify.stats.seconds,
            ..SolveStats::default()
        };
        FlowSensitiveResult::new(store, pt, callgraph_edges, stats)
    }
}

/// The outcome of a resource-governed analysis run: the points-to result
/// actually delivered, plus how it was obtained.
///
/// When `completion` is `Degraded`, `result` holds a sound fallback
/// and `mode` names the rung of the degradation ladder that produced
/// it: `"flow-insensitive-fallback"` when the flow-sensitive stage
/// tripped and the Andersen result stands in
/// ([`FlowSensitiveResult::from_andersen`]), or
/// `"unification-fallback"` when even the Andersen stage tripped and a
/// unification run stands in ([`FlowSensitiveResult::from_unify`]).
/// Either way the result is still *sound* (a superset of the complete
/// flow-sensitive answer), just less precise.
#[derive(Debug, Clone)]
pub struct GovernedAnalysis {
    /// The delivered points-to result (flow-sensitive, or a sound
    /// fallback on degradation).
    pub result: FlowSensitiveResult,
    /// `Complete`, or `Degraded(reason)` describing the trip.
    pub completion: Completion,
    /// `"flow-sensitive"`, `"flow-insensitive-fallback"`, or
    /// `"unification-fallback"`.
    pub mode: &'static str,
    /// The stage that tripped, when degraded: `"andersen"`,
    /// `"versioning"`, or `"solve"`.
    pub degraded_stage: Option<&'static str>,
}

impl GovernedAnalysis {
    /// A completed flow-sensitive run.
    pub fn complete(result: FlowSensitiveResult) -> GovernedAnalysis {
        GovernedAnalysis {
            result,
            completion: Completion::Complete,
            mode: "flow-sensitive",
            degraded_stage: None,
        }
    }

    /// A degraded run: deliver the sound Andersen fallback, tagged with
    /// the stage that tripped and why.
    pub fn fallback(
        prog: &Program,
        aux: &AndersenResult,
        stage: &'static str,
        reason: DegradeReason,
    ) -> GovernedAnalysis {
        GovernedAnalysis {
            result: FlowSensitiveResult::from_andersen(prog, aux),
            completion: Completion::Degraded(reason),
            mode: "flow-insensitive-fallback",
            degraded_stage: Some(stage),
        }
    }

    /// The second rung of the degradation ladder: the Andersen stage
    /// itself tripped, so deliver a unification result instead of a
    /// hard error. Coarser than the first rung but still sound.
    pub fn unify_fallback(
        prog: &Program,
        unify: &UnifyResult,
        stage: &'static str,
        reason: DegradeReason,
    ) -> GovernedAnalysis {
        GovernedAnalysis {
            result: FlowSensitiveResult::from_unify(prog, unify),
            completion: Completion::Degraded(reason),
            mode: "unification-fallback",
            degraded_stage: Some(stage),
        }
    }

    /// Returns `true` if the flow-sensitive analysis ran to completion.
    pub fn is_complete(&self) -> bool {
        self.completion.is_complete()
    }
}

/// Counters describing a flow-sensitive solve.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveStats {
    /// Node worklist pops.
    pub node_pops: usize,
    /// Version-slot worklist pops (VSFS only; 0 for SFS).
    pub slot_pops: usize,
    /// Worklist enqueues suppressed by the in-queue guard across all
    /// worklists of the run.
    pub pushes_suppressed: usize,
    /// Points-to set union operations performed for address-taken objects
    /// (edge or version propagations plus store transfers).
    pub object_propagations: usize,
    /// Edge/slot visits where difference propagation proved nothing new
    /// had to flow (frontier already current, empty delta, or the target
    /// already covered the delta) and the union was skipped.
    pub unions_avoided: usize,
    /// Heap bytes of the deltas actually shipped along indirect edges and
    /// reliance edges (what difference propagation transferred).
    pub delta_bytes: usize,
    /// Heap bytes the same propagations would have shipped without
    /// frontiers (the full source set each time).
    pub full_bytes: usize,
    /// Distinct points-to sets stored for address-taken objects at the end
    /// of the run (SFS: `IN`/`OUT` entries; VSFS: `(object, version)`
    /// slots). Logical slots — dedup across slots shows up in
    /// [`SolveStats::store`], not here.
    pub stored_object_sets: usize,
    /// Total elements across those sets.
    pub stored_object_elems: usize,
    /// Approximate heap bytes those sets would occupy if each slot owned
    /// its set (the pre-dedup logical footprint).
    pub stored_object_bytes: usize,
    /// Strong updates applied.
    pub strong_updates: usize,
    /// Indirect `(call, callee)` pairs activated during solving.
    pub calls_activated: usize,
    /// Versioning-only: number of non-identity prelabels created.
    pub prelabels: usize,
    /// Versioning-only: distinct `(object, version)` slots.
    pub versions: usize,
    /// Versioning-only: version reliance (propagation) constraints after
    /// deduplication.
    pub reliance_edges: usize,
    /// Node pops whose SVFG component's input stamp was unchanged since
    /// the node's last visit — the region-level memo recognised a clean
    /// region (see `crate::region`).
    pub scc_fingerprint_hits: usize,
    /// Node transfers actually skipped on the strength of a region-memo
    /// hit. At most [`SolveStats::scc_fingerprint_hits`]; a hit is not a
    /// skip when skipping is unsound for that node kind.
    pub scc_solves_skipped: usize,
    /// Versioning pre-analysis wall-clock time in seconds (0 for SFS).
    pub versioning_seconds: f64,
    /// Main-phase wall-clock time in seconds.
    pub solve_seconds: f64,
    /// Hash-consed store counters: unique canonical sets, their physical
    /// bytes, and memo hit rates for the run's set algebra.
    pub store: PtsStoreStats,
}

/// Checks the paper's precision claim: both analyses computed identical
/// points-to sets for every top-level variable and identical call graphs.
pub fn same_precision(prog: &Program, a: &FlowSensitiveResult, b: &FlowSensitiveResult) -> bool {
    if a.callgraph_edges != b.callgraph_edges {
        return false;
    }
    prog.values.indices().all(|v| a.value_pts(v) == b.value_pts(v))
}

/// Like [`same_precision`] but reports the first difference, for test
/// diagnostics.
pub fn precision_diff(
    prog: &Program,
    a: &FlowSensitiveResult,
    b: &FlowSensitiveResult,
) -> Option<String> {
    if a.callgraph_edges != b.callgraph_edges {
        return Some(format!(
            "call graphs differ: {:?} vs {:?}",
            a.callgraph_edges, b.callgraph_edges
        ));
    }
    for v in prog.values.indices() {
        if a.value_pts(v) != b.value_pts(v) {
            let names = |s: &PointsToSet<ObjId>| {
                s.iter().map(|o| prog.objects[o].name.clone()).collect::<Vec<_>>()
            };
            return Some(format!(
                "pt(%{}) differs: {:?} vs {:?}",
                prog.values[v].name,
                names(a.value_pts(v)),
                names(b.value_pts(v))
            ));
        }
    }
    None
}

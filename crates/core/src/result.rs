//! Results and statistics shared by both flow-sensitive solvers.

use vsfs_adt::{IndexVec, PointsToSet};
use vsfs_ir::{FuncId, InstId, ObjId, Program, ValueId};

/// The output of a flow-sensitive analysis run.
#[derive(Debug, Clone)]
pub struct FlowSensitiveResult {
    /// Final (global) points-to set of every top-level value.
    pub pt: IndexVec<ValueId, PointsToSet<ObjId>>,
    /// Call-graph edges resolved flow-sensitively, sorted.
    pub callgraph_edges: Vec<(InstId, FuncId)>,
    /// Counters for the run.
    pub stats: SolveStats,
}

impl FlowSensitiveResult {
    /// The points-to set of `v`.
    pub fn value_pts(&self, v: ValueId) -> &PointsToSet<ObjId> {
        &self.pt[v]
    }
}

/// Counters describing a flow-sensitive solve.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveStats {
    /// Node worklist pops.
    pub node_pops: usize,
    /// Points-to set union operations performed for address-taken objects
    /// (edge or version propagations plus store transfers).
    pub object_propagations: usize,
    /// Distinct points-to sets stored for address-taken objects at the end
    /// of the run (SFS: `IN`/`OUT` entries; VSFS: `(object, version)`
    /// slots).
    pub stored_object_sets: usize,
    /// Total elements across those sets.
    pub stored_object_elems: usize,
    /// Approximate heap bytes held by those sets.
    pub stored_object_bytes: usize,
    /// Strong updates applied.
    pub strong_updates: usize,
    /// Indirect `(call, callee)` pairs activated during solving.
    pub calls_activated: usize,
    /// Versioning-only: number of non-identity prelabels created.
    pub prelabels: usize,
    /// Versioning-only: distinct `(object, version)` slots.
    pub versions: usize,
    /// Versioning-only: version reliance (propagation) constraints after
    /// deduplication.
    pub reliance_edges: usize,
    /// Versioning pre-analysis wall-clock time in seconds (0 for SFS).
    pub versioning_seconds: f64,
    /// Main-phase wall-clock time in seconds.
    pub solve_seconds: f64,
}

/// Checks the paper's precision claim: both analyses computed identical
/// points-to sets for every top-level variable and identical call graphs.
pub fn same_precision(prog: &Program, a: &FlowSensitiveResult, b: &FlowSensitiveResult) -> bool {
    if a.callgraph_edges != b.callgraph_edges {
        return false;
    }
    prog.values.indices().all(|v| a.pt[v] == b.pt[v])
}

/// Like [`same_precision`] but reports the first difference, for test
/// diagnostics.
pub fn precision_diff(
    prog: &Program,
    a: &FlowSensitiveResult,
    b: &FlowSensitiveResult,
) -> Option<String> {
    if a.callgraph_edges != b.callgraph_edges {
        return Some(format!(
            "call graphs differ: {:?} vs {:?}",
            a.callgraph_edges, b.callgraph_edges
        ));
    }
    for v in prog.values.indices() {
        if a.pt[v] != b.pt[v] {
            let names = |s: &PointsToSet<ObjId>| {
                s.iter().map(|o| prog.objects[o].name.clone()).collect::<Vec<_>>()
            };
            return Some(format!(
                "pt(%{}) differs: {:?} vs {:?}",
                prog.values[v].name,
                names(&a.pt[v]),
                names(&b.pt[v])
            ));
        }
    }
    None
}

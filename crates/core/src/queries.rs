//! Client-facing queries over analysis results.
//!
//! Pointer analyses exist to serve clients — compiler optimisations,
//! vulnerability detection, verification, slicing (Section I). This
//! module wraps a [`FlowSensitiveResult`] with the queries such clients
//! ask.

use crate::result::FlowSensitiveResult;
use vsfs_ir::{ObjId, Program, ValueId};

/// Alias/points-to queries over a completed analysis.
///
/// # Examples
///
/// ```
/// use vsfs_core::queries::AliasQueries;
///
/// let prog = vsfs_ir::parse_program(r#"
/// func @main() {
/// entry:
///   %p = alloc stack A
///   %q = alloc stack B
///   %r = copy %p
///   ret
/// }
/// "#)?;
/// let aux = vsfs_andersen::analyze(&prog);
/// let mssa = vsfs_mssa::MemorySsa::build(&prog, &aux);
/// let svfg = vsfs_svfg::Svfg::build(&prog, &aux, &mssa);
/// let result = vsfs_core::run_vsfs(&prog, &aux, &mssa, &svfg);
/// let q = AliasQueries::new(&prog, &result);
/// let by_name = |n: &str| prog.values.iter_enumerated()
///     .find(|(_, v)| v.name == n).map(|(id, _)| id).unwrap();
/// assert!(q.may_alias(by_name("p"), by_name("r")));  // same object A
/// assert!(!q.may_alias(by_name("p"), by_name("q"))); // A vs B
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AliasQueries<'a> {
    prog: &'a Program,
    result: &'a FlowSensitiveResult,
}

impl<'a> AliasQueries<'a> {
    /// Wraps `result` for querying.
    pub fn new(prog: &'a Program, result: &'a FlowSensitiveResult) -> Self {
        AliasQueries { prog, result }
    }

    /// May `p` and `q` point to the same object?
    pub fn may_alias(&self, p: ValueId, q: ValueId) -> bool {
        !self.result.value_pts(p).is_disjoint(self.result.value_pts(q))
    }

    /// Does `p` definitely point to exactly one abstract object?
    ///
    /// (The object may still summarise several runtime objects unless it
    /// is a singleton.)
    pub fn unique_target(&self, p: ValueId) -> Option<ObjId> {
        self.result.value_pts(p).as_singleton()
    }

    /// Is `p`'s points-to set empty — i.e. no allocation ever reaches it
    /// (an uninitialised-pointer candidate)?
    pub fn is_empty(&self, p: ValueId) -> bool {
        self.result.value_pts(p).is_empty()
    }

    /// May `p` point to heap memory?
    pub fn may_point_to_heap(&self, p: ValueId) -> bool {
        self.result.value_pts(p).iter().any(|o| self.prog.objects[o].is_heap())
    }

    /// The names of `p`'s pointees (diagnostics).
    pub fn pointee_names(&self, p: ValueId) -> Vec<&'a str> {
        self.result.value_pts(p).iter().map(|o| self.prog.objects[o].name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_for(src: &str) -> (Program, FlowSensitiveResult) {
        let prog = vsfs_ir::parse_program(src).unwrap();
        let aux = vsfs_andersen::analyze(&prog);
        let mssa = vsfs_mssa::MemorySsa::build(&prog, &aux);
        let svfg = vsfs_svfg::Svfg::build(&prog, &aux, &mssa);
        let r = crate::run_vsfs(&prog, &aux, &mssa, &svfg);
        (prog, r)
    }

    fn val(prog: &Program, n: &str) -> ValueId {
        prog.values.iter_enumerated().find(|(_, v)| v.name == n).map(|(id, _)| id).unwrap()
    }

    #[test]
    fn alias_and_target_queries() {
        let (prog, r) = result_for(
            r#"
            func @main() {
            entry:
              %p = alloc stack A
              %h = alloc heap H
              %r = copy %p
              %never = load %p
              store %h, %p
              %loaded = load %p
              ret
            }
            "#,
        );
        let q = AliasQueries::new(&prog, &r);
        assert!(q.may_alias(val(&prog, "p"), val(&prog, "r")));
        assert!(!q.may_alias(val(&prog, "p"), val(&prog, "h")));
        assert_eq!(
            q.unique_target(val(&prog, "p")),
            Some(prog.objects.iter_enumerated().find(|(_, o)| o.name == "A").unwrap().0)
        );
        assert!(q.is_empty(val(&prog, "never")), "load before any store");
        assert!(!q.is_empty(val(&prog, "loaded")));
        assert!(q.may_point_to_heap(val(&prog, "loaded")));
        assert!(!q.may_point_to_heap(val(&prog, "p")));
        assert_eq!(q.pointee_names(val(&prog, "loaded")), vec!["H"]);
    }
}

//! Precision comparison between the flow-insensitive auxiliary analysis
//! and a flow-sensitive result.
//!
//! Flow-sensitivity is bought for performance; this report quantifies
//! what it buys back (Section I's motivation): smaller points-to sets,
//! fewer feasible call edges, more provably-uninitialised loads.

use crate::result::FlowSensitiveResult;
use vsfs_andersen::AndersenResult;
use vsfs_ir::{InstKind, Program};

/// Aggregate precision metrics of a flow-sensitive result relative to the
/// auxiliary analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PrecisionReport {
    /// Top-level values considered (non-empty in at least one analysis).
    pub values: usize,
    /// Values whose flow-sensitive set is strictly smaller.
    pub refined_values: usize,
    /// Total elements across auxiliary sets.
    pub aux_elems: usize,
    /// Total elements across flow-sensitive sets.
    pub fs_elems: usize,
    /// Auxiliary call-graph edges.
    pub aux_call_edges: usize,
    /// Flow-sensitively feasible call edges.
    pub fs_call_edges: usize,
    /// Loads whose destination is empty flow-sensitively but non-empty in
    /// the auxiliary analysis (use-before-define candidates the auxiliary
    /// analysis cannot see).
    pub proven_uninitialised_loads: usize,
}

impl PrecisionReport {
    /// Average auxiliary points-to set size.
    pub fn aux_avg(&self) -> f64 {
        self.aux_elems as f64 / self.values.max(1) as f64
    }

    /// Average flow-sensitive points-to set size.
    pub fn fs_avg(&self) -> f64 {
        self.fs_elems as f64 / self.values.max(1) as f64
    }
}

/// Computes the report.
pub fn compare_precision(
    prog: &Program,
    aux: &AndersenResult,
    fs: &FlowSensitiveResult,
) -> PrecisionReport {
    let mut r = PrecisionReport::default();
    for v in prog.values.indices() {
        let a = aux.value_pts(v);
        let f = fs.value_pts(v);
        if a.is_empty() && f.is_empty() {
            continue;
        }
        r.values += 1;
        r.aux_elems += a.len();
        r.fs_elems += f.len();
        if f.len() < a.len() {
            r.refined_values += 1;
        }
    }
    r.aux_call_edges = aux.callgraph.edge_count();
    r.fs_call_edges = fs.callgraph_edges.len();
    for (_, inst) in prog.insts.iter_enumerated() {
        if let InstKind::Load { dst, .. } = inst.kind {
            if fs.value_pts(dst).is_empty() && !aux.value_pts(dst).is_empty() {
                r.proven_uninitialised_loads += 1;
            }
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_refinements() {
        let prog = vsfs_ir::parse_program(
            r#"
            func @main() {
            entry:
              %p = alloc stack Cell
              %early = load %p
              %h1 = alloc heap H1
              %h2 = alloc heap H2
              store %h1, %p
              %mid = load %p
              store %h2, %p
              %late = load %p
              ret
            }
            "#,
        )
        .unwrap();
        let aux = vsfs_andersen::analyze(&prog);
        let mssa = vsfs_mssa::MemorySsa::build(&prog, &aux);
        let svfg = vsfs_svfg::Svfg::build(&prog, &aux, &mssa);
        let fs = crate::run_vsfs(&prog, &aux, &mssa, &svfg);
        let r = compare_precision(&prog, &aux, &fs);
        // %early ({} vs {H1,H2}), %mid ({H1} vs {H1,H2}), %late ({H2} vs
        // {H1,H2}) are refined.
        assert_eq!(r.refined_values, 3);
        assert_eq!(r.proven_uninitialised_loads, 1);
        assert!(r.fs_avg() < r.aux_avg());
        assert!(r.fs_elems < r.aux_elems);
        assert_eq!(r.aux_call_edges, 0);
        assert_eq!(r.fs_call_edges, 0);
    }
}

//! Flow-sensitive pointer analyses on the sparse value-flow graph: the
//! **SFS** baseline (staged flow-sensitive analysis, Hardekopf & Lin) and
//! the paper's contribution, **VSFS** (versioned staged flow-sensitive
//! analysis).
//!
//! # The two solvers
//!
//! * [`run_sfs`] implements the baseline of Section IV-A, equations (6)
//!   and (7): every SVFG node maintains an `IN` set (and `STORE` nodes an
//!   `OUT` set) mapping objects to points-to sets; indirect edges
//!   propagate whole points-to sets between nodes.
//! * [`run_vsfs`] implements Sections IV-C and IV-D: a cheap pre-analysis
//!   (*prelabelling* + *meld labelling*, the [`versioning`] module)
//!   assigns every `(node, object)` pair a *consumed* and a *yielded*
//!   version; points-to sets are stored once per `(object, version)`
//!   globally, and propagation happens between versions rather than
//!   between nodes — skipping every edge whose endpoints share a version.
//!
//! Both solvers perform on-the-fly call-graph resolution (more precise
//! than the auxiliary analysis's call graph), apply strong updates at
//! stores whose target is a unique singleton, and produce **identical
//! points-to results** — the central correctness property, checked by the
//! `tests/` suite and by property tests over randomly generated programs.
//!
//! # Examples
//!
//! ```
//! let prog = vsfs_ir::parse_program(r#"
//! func @main() {
//! entry:
//!   %p = alloc stack A
//!   %q1 = alloc heap H1
//!   %q2 = alloc heap H2
//!   store %q1, %p
//!   %x = load %p       // sees only H1 (flow-sensitive!)
//!   store %q2, %p      // strong update: kills H1
//!   %y = load %p       // sees only H2
//!   ret
//! }
//! "#)?;
//! let aux = vsfs_andersen::analyze(&prog);
//! let mssa = vsfs_mssa::MemorySsa::build(&prog, &aux);
//! let svfg = vsfs_svfg::Svfg::build(&prog, &aux, &mssa);
//! let sfs = vsfs_core::run_sfs(&prog, &aux, &mssa, &svfg);
//! let vsfs = vsfs_core::run_vsfs(&prog, &aux, &mssa, &svfg);
//! assert!(vsfs_core::same_precision(&prog, &sfs, &vsfs));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cfgfree;
pub mod dense;
pub mod incremental;
pub mod precision;
pub mod queries;
mod region;
pub mod result;
pub mod schedule;
pub mod sfs;
pub mod solver;
pub mod toplevel;
pub mod versioning;
pub mod vsfs;
pub mod warm;

pub use cfgfree::{
    run_cfgfree, run_cfgfree_governed, run_cfgfree_governed_ordered, run_cfgfree_ordered,
};
pub use dense::{run_dense, run_dense_governed};
pub use incremental::{
    resolve_edit, result_fingerprint, solve_program, IncrementalOptions, ProgramState, SolveError,
    SolveReport,
};
pub use precision::{compare_precision, PrecisionReport};
pub use result::{
    precision_diff, same_precision, FlowSensitiveResult, GovernedAnalysis, SolveStats,
};
pub use schedule::{SolveConfig, SolveOrder};
pub use sfs::{
    run_sfs, run_sfs_configured, run_sfs_governed, run_sfs_governed_configured,
    run_sfs_governed_ordered, run_sfs_ordered,
};
pub use solver::{SolverCaps, SolverKind};
pub use versioning::{VersionTables, VersioningStats};
pub use vsfs::{
    run_vsfs, run_vsfs_configured, run_vsfs_governed, run_vsfs_governed_configured,
    run_vsfs_governed_ordered, run_vsfs_jobs, run_vsfs_jobs_configured, run_vsfs_jobs_ordered,
    run_vsfs_ordered, run_vsfs_with_tables, run_vsfs_with_tables_configured,
    run_vsfs_with_tables_ordered,
};
pub use warm::{export_warm, restore_program, WarmExport};

//! Traditional (dense) flow-sensitive pointer analysis on the ICFG —
//! the formulation of Section IV-A, equations (4) and (5):
//!
//! ```text
//! IN_ℓ  = ⋃_{ℓ' ∈ pred(ℓ)} OUT_{ℓ'}
//! OUT_ℓ = Gen_ℓ ∪ (IN_ℓ − Kill_ℓ)
//! ```
//!
//! Address-taken object state is maintained at *every* program point and
//! propagated across *every* control-flow edge — no sparsity at all. The
//! paper cites this as the classic approach whose overhead motivated
//! semi-sparse and staged analyses; it is included here as the historical
//! baseline and as an ablation (`cargo bench -p vsfs-bench --bench
//! ablations`): on anything nontrivial it is dramatically slower than
//! SFS, which is in turn slower than VSFS.
//!
//! Call targets are the auxiliary call graph's (no on-the-fly
//! refinement), and no escape filtering restricts interprocedural object
//! flow, so the result may be (soundly) *less* precise than SFS/VSFS:
//! for every value, `pt_vsfs(v) ⊆ pt_dense(v) ⊆ pt_andersen(v)`.

use crate::result::{FlowSensitiveResult, GovernedAnalysis, SolveStats};
use std::collections::HashMap;
use std::time::Instant;
use vsfs_adt::govern::{Completion, Governor};
use vsfs_adt::{FifoWorklist, IndexVec, PointsToSet, PtsId, PtsStore};
use vsfs_andersen::AndersenResult;
use vsfs_ir::{DefUse, Icfg, InstId, InstKind, ObjId, Program, ValueId};

/// Runs the dense flow-sensitive analysis to a fixpoint.
///
/// The dense solver keeps its internal state as owned sets (the whole
/// point of this baseline is the unshared per-point storage); only the
/// final per-value sets are interned so the result carries the same
/// hash-consed representation as the staged solvers.
pub fn run_dense(prog: &Program, aux: &AndersenResult) -> FlowSensitiveResult {
    solve_impl(prog, aux, None).0
}

/// Runs the dense solver under a [`Governor`]: one cooperative
/// checkpoint per worklist pop, matching the staged solvers' protocol.
/// On a trip the returned [`GovernedAnalysis`] carries the sound
/// Andersen fallback.
pub fn run_dense_governed(
    prog: &Program,
    aux: &AndersenResult,
    governor: &Governor,
) -> GovernedAnalysis {
    let (result, completion) = solve_impl(prog, aux, Some(governor));
    match completion {
        Completion::Complete => GovernedAnalysis::complete(result),
        Completion::Degraded(reason) => GovernedAnalysis::fallback(prog, aux, "solve", reason),
    }
}

fn solve_impl(
    prog: &Program,
    aux: &AndersenResult,
    governor: Option<&Governor>,
) -> (FlowSensitiveResult, Completion) {
    let start = Instant::now();
    let mut solver = DenseSolver::new(prog, aux);
    let completion = solver.solve(governor);
    let mut stats = solver.stats;
    stats.solve_seconds = start.elapsed().as_secs_f64();
    let (sets, elems, bytes) = solver.storage_stats();
    stats.stored_object_sets = sets;
    stats.stored_object_elems = elems;
    stats.stored_object_bytes = bytes;
    let mut callgraph_edges: Vec<_> = aux.callgraph.edges().collect();
    callgraph_edges.sort();
    let mut store = PtsStore::new();
    let pt: IndexVec<ValueId, PtsId> = solver.pt.iter().map(|s| store.intern(s)).collect();
    stats.store = store.stats();
    (FlowSensitiveResult::new(store, pt, callgraph_edges, stats), completion)
}

type ObjMap = HashMap<ObjId, PointsToSet<ObjId>>;

struct DenseSolver<'a> {
    prog: &'a Program,
    aux: &'a AndersenResult,
    icfg: Icfg,
    defuse: DefUse,
    singletons: PointsToSet<ObjId>,
    pt: IndexVec<ValueId, PointsToSet<ObjId>>,
    ins: IndexVec<InstId, ObjMap>,
    /// OUT entries for objects a store (re)defines; all other objects
    /// pass through unchanged (`OUT = IN`).
    outs: IndexVec<InstId, ObjMap>,
    dirty: IndexVec<InstId, PointsToSet<ObjId>>,
    worklist: FifoWorklist<InstId>,
    stats: SolveStats,
}

impl<'a> DenseSolver<'a> {
    fn new(prog: &'a Program, aux: &'a AndersenResult) -> Self {
        let icfg = Icfg::build(prog, |c| aux.callgraph.callees(c).to_vec());
        let n = prog.insts.len();
        let mut pt: IndexVec<ValueId, PointsToSet<ObjId>> =
            (0..prog.values.len()).map(|_| PointsToSet::new()).collect();
        for &(g, obj) in &prog.globals {
            pt[g].insert(obj);
        }
        let mut worklist = FifoWorklist::new(n);
        for i in prog.insts.indices() {
            worklist.push(i);
        }
        DenseSolver {
            prog,
            aux,
            icfg,
            defuse: DefUse::compute(prog),
            singletons: vsfs_andersen::compute_singletons(prog, &aux.callgraph),
            pt,
            ins: (0..n).map(|_| ObjMap::new()).collect(),
            outs: (0..n).map(|_| ObjMap::new()).collect(),
            dirty: (0..n).map(|_| PointsToSet::new()).collect(),
            worklist,
            stats: SolveStats::default(),
        }
    }

    fn solve(&mut self, governor: Option<&Governor>) -> Completion {
        while let Some(inst) = self.worklist.pop() {
            if let Some(gov) = governor {
                if let Err(reason) = gov.check(1) {
                    return Completion::Degraded(reason);
                }
            }
            self.stats.node_pops += 1;
            self.process(inst);
        }
        Completion::Complete
    }

    fn union_pt(&mut self, v: ValueId, add: &PointsToSet<ObjId>) {
        if !self.pt[v].union_with(add) {
            return;
        }
        for &u in self.defuse.uses(v).to_vec().iter() {
            self.worklist.push(u);
        }
    }

    fn insert_pt(&mut self, v: ValueId, o: ObjId) {
        if !self.pt[v].insert(o) {
            return;
        }
        for &u in self.defuse.uses(v).to_vec().iter() {
            self.worklist.push(u);
        }
    }

    fn process(&mut self, inst: InstId) {
        match self.prog.insts[inst].kind.clone() {
            InstKind::Alloc { dst, obj } => self.insert_pt(dst, obj),
            InstKind::Copy { dst, src } => {
                let s = self.pt[src].clone();
                self.union_pt(dst, &s);
            }
            InstKind::Phi { dst, srcs } => {
                let mut s = PointsToSet::new();
                for src in srcs {
                    s.union_with(&self.pt[src]);
                }
                self.union_pt(dst, &s);
            }
            InstKind::Field { dst, base, offset } => {
                for o in self.pt[base].iter().collect::<Vec<_>>() {
                    let f = self.prog.field_object(o, offset);
                    self.insert_pt(dst, f);
                }
            }
            InstKind::Call { ref args, .. } => {
                // The dense classic analysis uses the pre-computed call
                // graph wholesale (no on-the-fly refinement).
                let targets: Vec<_> = self.aux.callgraph.callees(inst).to_vec();
                for f in targets {
                    let params = self.prog.functions[f].params.clone();
                    for (a, p) in args.clone().iter().zip(params.iter()) {
                        let s = self.pt[*a].clone();
                        self.union_pt(*p, &s);
                    }
                }
            }
            InstKind::FunExit { func, ret } => {
                if let Some(r) = ret {
                    let s = self.pt[r].clone();
                    for &call in self.aux.callgraph.callers(func).to_vec().iter() {
                        if let InstKind::Call { dst: Some(d), .. } = self.prog.insts[call].kind {
                            self.union_pt(d, &s);
                        }
                    }
                }
            }
            InstKind::Load { dst, addr } => {
                for o in self.pt[addr].iter().collect::<Vec<_>>() {
                    if let Some(s) = self.ins[inst].get(&o) {
                        let s = s.clone();
                        self.union_pt(dst, &s);
                    }
                }
            }
            InstKind::Store { addr, val } => {
                // Gen/Kill on every object the pointer may target. The
                // strong/weak decision is static on the auxiliary set,
                // matching the staged solvers (monotone transfer).
                let gen = self.pt[val].clone();
                let targets = self.pt[addr].clone();
                for o in targets.iter().collect::<Vec<_>>() {
                    let su = self.singletons.contains(o)
                        && self.aux.value_pts(addr).as_singleton() == Some(o);
                    let mut out = PointsToSet::new();
                    if su {
                        self.stats.strong_updates += 1;
                        out.union_with(&gen);
                    } else {
                        if let Some(i) = self.ins[inst].get(&o) {
                            out.union_with(i);
                        }
                        out.union_with(&gen);
                    }
                    self.stats.object_propagations += 1;
                    let slot = self.outs[inst].entry(o).or_default();
                    if slot.union_with(&out) {
                        self.dirty[inst].insert(o);
                    }
                }
            }
            // FREE neither defines a top-level value nor changes any
            // points-to set: OUT = IN, like FUNENTRY.
            InstKind::Free { .. } | InstKind::FunEntry { .. } => {}
        }
        self.propagate(inst);
    }

    /// Every object in the dirty set flows to every ICFG successor — the
    /// defining inefficiency of the dense approach.
    fn propagate(&mut self, inst: InstId) {
        if self.dirty[inst].is_empty() {
            return;
        }
        let dirty = std::mem::take(&mut self.dirty[inst]);
        let is_store = self.prog.insts[inst].kind.is_store();
        let succs = self.icfg.successors(inst).to_vec();
        for o in dirty.iter().collect::<Vec<_>>() {
            let redefined = is_store && self.outs[inst].contains_key(&o);
            for &succ in &succs {
                self.stats.object_propagations += 1;
                let val = if redefined { self.outs[inst].get(&o) } else { self.ins[inst].get(&o) };
                let Some(val) = val else { continue };
                if self.ins[succ].get(&o).is_some_and(|s| s.is_superset(val)) {
                    continue;
                }
                let val = val.clone();
                let slot = self.ins[succ].entry(o).or_default();
                if slot.union_with(&val) {
                    self.dirty[succ].insert(o);
                    self.worklist.push(succ);
                }
            }
        }
    }

    fn storage_stats(&self) -> (usize, usize, usize) {
        let mut sets = 0;
        let mut elems = 0;
        let mut bytes = 0;
        for m in self.ins.iter().chain(self.outs.iter()) {
            sets += m.len();
            for s in m.values() {
                elems += s.len();
                bytes += s.heap_bytes();
            }
        }
        (sets, elems, bytes)
    }
}

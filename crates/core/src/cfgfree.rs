//! CFG-free flow-sensitive analysis by constraint ordering ("Flow
//! Sensitivity without Control Flow Graph", see PAPERS.md).
//!
//! Where SFS/VSFS propagate object state along an explicitly built
//! sparse value-flow graph (memory SSA → SVFG → indirect edges), this
//! solver never materialises either stage. It recovers the same
//! flow-sensitive answers directly from the Andersen-annotated
//! constraint graph in three steps:
//!
//! 1. **Events.** Each instruction's µ (may-use) and χ (may-define)
//!    object annotations (`vsfs_mssa::annot`, which needs only the
//!    auxiliary result — no SSA renaming) become *use* and *def*
//!    events: stores and `FUNENTRY` define, loads and `FUNEXIT` use,
//!    calls do both (callee-bound µ before the call-return χ). `FREE`
//!    events are transparent (they neither generate nor kill) and are
//!    skipped outright.
//! 2. **Ordering.** A per-`(function, object)` reaching-definitions
//!    pass over the basic blocks — in which *only strong stores kill*
//!    — yields the static `def → use` reach relation. This is the
//!    "constraint ordering": it encodes exactly which definitions a
//!    use may observe, which is all the flow sensitivity the SVFG's
//!    def-use chains encode, without ever running SSA construction.
//! 3. **Solving.** A monotone fixpoint over one worklist of plain
//!    `InstId`s: def events evaluate their generated value (strong
//!    stores unconditionally, weak stores gated by the evolving
//!    points-to set of the address, call/entry events by merging over
//!    activated bindings) and ship growth along their reach edges with
//!    the same per-edge frontier difference propagation the staged
//!    solvers use.
//!
//! **Exactness.** Because weak definitions kill nothing, a definition
//! reaches a use here iff the corresponding SVFG def-use chain links
//! them transitively through weak χ relays, and strong stores block
//! both formulations identically. The strong/weak decision is the same
//! *static* rule (`singleton ∧ aux-pt(addr) = {o}`), call bindings use
//! the same µ/χ intersections, and top-level transfers are shared
//! semantics — so this solver computes the unique least fixpoint of
//! the same monotone system as SFS/VSFS and is query-identical to
//! them (enforced by `tests/equivalence.rs` and the CI solver gate).

use crate::result::{FlowSensitiveResult, GovernedAnalysis, SolveStats};
use crate::schedule::SolveOrder;
use std::collections::{HashMap, HashSet};
use std::time::Instant;
use vsfs_adt::govern::{Completion, Governor};
use vsfs_adt::{IndexVec, PointsToSet, PtsId, PtsStore, Worklist};
use vsfs_andersen::AndersenResult;
use vsfs_graph::{condensation_ranks, DiGraph};
use vsfs_ir::{Callee, Cfg, DefUse, FuncId, InstId, InstKind, ObjId, Program, ValueId};
use vsfs_mssa::annot::{annotate, Annotations};
use vsfs_mssa::ModRef;

const EMPTY: PtsId = PtsStore::<ObjId>::EMPTY;

/// Runs the CFG-free solver to a fixpoint under the default
/// (topological) schedule. Unlike [`crate::run_sfs`]/[`crate::run_vsfs`]
/// it takes no memory SSA and no SVFG — the Andersen result is the
/// whole pipeline.
pub fn run_cfgfree(prog: &Program, aux: &AndersenResult) -> FlowSensitiveResult {
    run_cfgfree_ordered(prog, aux, SolveOrder::default())
}

/// [`run_cfgfree`] under an explicit worklist [`SolveOrder`]. The
/// fixpoint is order-independent; only the visit counts change.
pub fn run_cfgfree_ordered(
    prog: &Program,
    aux: &AndersenResult,
    order: SolveOrder,
) -> FlowSensitiveResult {
    solve_impl(prog, aux, None, order).0
}

/// Runs the CFG-free solver under a [`Governor`]: one cooperative
/// checkpoint per worklist pop. On a trip the returned
/// [`GovernedAnalysis`] carries the sound Andersen fallback.
pub fn run_cfgfree_governed(
    prog: &Program,
    aux: &AndersenResult,
    governor: &Governor,
) -> GovernedAnalysis {
    run_cfgfree_governed_ordered(prog, aux, governor, SolveOrder::default())
}

/// [`run_cfgfree_governed`] with an explicit worklist [`SolveOrder`].
pub fn run_cfgfree_governed_ordered(
    prog: &Program,
    aux: &AndersenResult,
    governor: &Governor,
    order: SolveOrder,
) -> GovernedAnalysis {
    let (result, completion) = solve_impl(prog, aux, Some(governor), order);
    match completion {
        Completion::Complete => GovernedAnalysis::complete(result),
        Completion::Degraded(reason) => GovernedAnalysis::fallback(prog, aux, "solve", reason),
    }
}

fn solve_impl(
    prog: &Program,
    aux: &AndersenResult,
    governor: Option<&Governor>,
    order: SolveOrder,
) -> (FlowSensitiveResult, Completion) {
    let start = Instant::now();
    let mut solver = CfgFreeSolver::new(prog, aux, order);
    for i in prog.insts.indices() {
        solver.worklist.push(i);
    }
    let completion = solver.solve_governed(governor);
    let mut stats = solver.stats;
    stats.solve_seconds = start.elapsed().as_secs_f64();
    stats.pushes_suppressed = solver.worklist.stats().suppressed;
    let (sets, elems, bytes) = solver.storage_stats();
    stats.stored_object_sets = sets;
    stats.stored_object_elems = elems;
    stats.stored_object_bytes = bytes;
    stats.store = solver.store.stats();
    let mut callgraph_edges: Vec<(InstId, FuncId)> = solver.activated.iter().copied().collect();
    callgraph_edges.sort_unstable();
    (FlowSensitiveResult::new(solver.store, solver.pt, callgraph_edges, stats), completion)
}

/// What a def event generates for its object.
#[derive(Clone, Copy)]
enum DefKind {
    /// `FUNENTRY` χ: merge of caller-side call-µ values over activated
    /// bindings (weak — the function's "incoming" state).
    Entry,
    /// Store χ. `strong` is the static `[SU/WU]` decision; a strong
    /// store's reach edges already encode the kill (no upstream def
    /// reaches past it), so evaluation is gen-only either way.
    Store { addr: ValueId, val: ValueId, strong: bool },
    /// Call-return χ: merge of callee exit-µ values over activated
    /// bindings (weak — pre-call state passes through by reach).
    CallRet,
}

/// What a use event feeds once its accumulated value grows.
#[derive(Clone, Copy)]
enum UseKind {
    /// Load µ: `pt(dst) ⊇ U` for each object gated by `pt(addr)`.
    Load { addr: ValueId, dst: ValueId },
    /// Call µ: value shipped into activated callees' entry events.
    CallMu,
    /// `FUNEXIT` µ: value shipped into activated callers' return events.
    ExitMu,
}

struct DefEvent {
    inst: InstId,
    obj: ObjId,
    kind: DefKind,
}

struct UseEvent {
    inst: InstId,
    obj: ObjId,
    kind: UseKind,
}

struct CfgFreeSolver<'a> {
    prog: &'a Program,
    aux: &'a AndersenResult,
    defuse: DefUse,
    /// Hash-consed points-to store shared by every table of the run.
    store: PtsStore<ObjId>,
    /// Global points-to set per top-level value.
    pt: IndexVec<ValueId, PtsId>,
    singletons: PointsToSet<ObjId>,
    active_callees: HashMap<InstId, Vec<FuncId>>,
    active_callers: HashMap<FuncId, Vec<InstId>>,
    activated: HashSet<(InstId, FuncId)>,
    defs: Vec<DefEvent>,
    uses: Vec<UseEvent>,
    /// Def / use events of each instruction (block-walk order).
    defs_at: IndexVec<InstId, Vec<u32>>,
    uses_at: IndexVec<InstId, Vec<u32>>,
    def_index: HashMap<(InstId, ObjId), u32>,
    use_index: HashMap<(InstId, ObjId), u32>,
    /// Static reach edges per def: `(use, frontier)` — the set id last
    /// shipped along the edge, for difference propagation.
    reach: Vec<Vec<(u32, PtsId)>>,
    /// Current generated value per def.
    val: Vec<PtsId>,
    /// Accumulated value per use: the union over its reaching defs.
    uval: Vec<PtsId>,
    /// Dynamic producers of `Entry`/`CallRet` defs: the caller/callee µ
    /// events wired in by call activation.
    producers: Vec<Vec<u32>>,
    /// Instructions to re-run when a use's accumulated value grows.
    consumers: Vec<Vec<InstId>>,
    worklist: Worklist<InstId>,
    stats: SolveStats,
}

impl<'a> CfgFreeSolver<'a> {
    fn new(prog: &'a Program, aux: &'a AndersenResult, order: SolveOrder) -> Self {
        let modref = ModRef::compute(prog, aux);
        let annots = annotate(prog, aux, &modref);
        let singletons = vsfs_andersen::compute_singletons(prog, &aux.callgraph);
        let mut pt: IndexVec<ValueId, PtsId> = (0..prog.values.len()).map(|_| EMPTY).collect();
        let mut store = PtsStore::new();
        for &(g, obj) in &prog.globals {
            pt[g] = store.insert(pt[g], obj);
        }

        let mut solver = CfgFreeSolver {
            prog,
            aux,
            defuse: DefUse::compute(prog),
            store,
            pt,
            singletons,
            active_callees: HashMap::new(),
            active_callers: HashMap::new(),
            activated: HashSet::new(),
            defs: Vec::new(),
            uses: Vec::new(),
            defs_at: (0..prog.insts.len()).map(|_| Vec::new()).collect(),
            uses_at: (0..prog.insts.len()).map(|_| Vec::new()).collect(),
            def_index: HashMap::new(),
            use_index: HashMap::new(),
            reach: Vec::new(),
            val: Vec::new(),
            uval: Vec::new(),
            producers: Vec::new(),
            consumers: Vec::new(),
            worklist: Worklist::fifo(prog.insts.len()),
            stats: SolveStats::default(),
        };
        solver.build_events(&annots);
        solver.build_reach();
        solver.worklist = match order {
            SolveOrder::Fifo => Worklist::fifo(prog.insts.len()),
            SolveOrder::Topo => Worklist::priority(solver.inst_ranks()),
        };
        solver
    }

    /// Turns the µ/χ annotations into the event arena. Within an
    /// instruction, µ events precede χ events — at a call the callee
    /// consumes the pre-call state, then the return χ defines the
    /// post-call state.
    fn build_events(&mut self, annots: &Annotations) {
        for (_, func) in self.prog.functions.iter_enumerated() {
            for &b in &func.blocks {
                for &inst in &self.prog.blocks[b].insts {
                    match &self.prog.insts[inst].kind {
                        InstKind::Load { dst, addr } => {
                            for o in annots.mu_objs[inst].iter() {
                                self.add_use(inst, o, UseKind::Load { addr: *addr, dst: *dst });
                            }
                        }
                        InstKind::Store { addr, val } => {
                            for o in annots.chi_objs[inst].iter() {
                                let strong = self.is_strong_update(*addr, o);
                                self.add_def(
                                    inst,
                                    o,
                                    DefKind::Store { addr: *addr, val: *val, strong },
                                );
                            }
                        }
                        InstKind::Call { .. } => {
                            for o in annots.mu_objs[inst].iter() {
                                self.add_use(inst, o, UseKind::CallMu);
                            }
                            for o in annots.chi_objs[inst].iter() {
                                self.add_def(inst, o, DefKind::CallRet);
                            }
                        }
                        InstKind::FunEntry { .. } => {
                            for o in annots.chi_objs[inst].iter() {
                                self.add_def(inst, o, DefKind::Entry);
                            }
                        }
                        InstKind::FunExit { .. } => {
                            for o in annots.mu_objs[inst].iter() {
                                self.add_use(inst, o, UseKind::ExitMu);
                            }
                        }
                        // FREE χ events are transparent (no gen, no
                        // kill): under reach-transitivity they drop out
                        // entirely. Everything else is top-level only.
                        _ => {}
                    }
                }
            }
        }
    }

    fn add_def(&mut self, inst: InstId, obj: ObjId, kind: DefKind) {
        let id = self.defs.len() as u32;
        self.defs.push(DefEvent { inst, obj, kind });
        self.defs_at[inst].push(id);
        self.def_index.insert((inst, obj), id);
        self.reach.push(Vec::new());
        self.val.push(EMPTY);
        self.producers.push(Vec::new());
    }

    fn add_use(&mut self, inst: InstId, obj: ObjId, kind: UseKind) {
        let id = self.uses.len() as u32;
        let consumers = match kind {
            // A load consumes its own accumulated value.
            UseKind::Load { .. } => vec![inst],
            // Call/exit µ consumers are the activated bindings' insts,
            // wired in by `activate`.
            UseKind::CallMu | UseKind::ExitMu => Vec::new(),
        };
        self.uses.push(UseEvent { inst, obj, kind });
        self.uses_at[inst].push(id);
        self.use_index.insert((inst, obj), id);
        self.uval.push(EMPTY);
        self.consumers.push(consumers);
    }

    /// The static per-`(function, object)` reaching-definitions pass:
    /// only strong stores kill; every def at-or-after the last strong
    /// def in a block is generated. Produces `def → use` reach edges.
    fn build_reach(&mut self) {
        for (f, func) in self.prog.functions.iter_enumerated() {
            let cfg = Cfg::build(self.prog, f);
            let nblocks = cfg.block_count();

            // Per-object, per-block event sequences (deterministic:
            // objects sorted, blocks and events in layout order).
            let mut objs: Vec<ObjId> = Vec::new();
            for &b in &func.blocks {
                for &inst in &self.prog.blocks[b].insts {
                    for &d in &self.defs_at[inst] {
                        objs.push(self.defs[d as usize].obj);
                    }
                    for &u in &self.uses_at[inst] {
                        objs.push(self.uses[u as usize].obj);
                    }
                }
            }
            objs.sort_unstable();
            objs.dedup();

            for o in objs {
                // Event walk per block: ordered (is_def, id, strong).
                let mut events: Vec<Vec<(bool, u32, bool)>> = vec![Vec::new(); nblocks];
                let mut local_defs: Vec<u32> = Vec::new();
                for (bi, &b) in func.blocks.iter().enumerate() {
                    for &inst in &self.prog.blocks[b].insts {
                        for &u in &self.uses_at[inst] {
                            if self.uses[u as usize].obj == o {
                                events[bi].push((false, u, false));
                            }
                        }
                        for &d in &self.defs_at[inst] {
                            if self.defs[d as usize].obj == o {
                                let strong = matches!(
                                    self.defs[d as usize].kind,
                                    DefKind::Store { strong: true, .. }
                                );
                                events[bi].push((true, d, strong));
                                local_defs.push(d);
                            }
                        }
                    }
                }
                if local_defs.is_empty() {
                    continue; // nothing can reach any use of `o` here
                }
                let k = local_defs.len();
                let words = k.div_ceil(64);
                let local_of: HashMap<u32, usize> =
                    local_defs.iter().enumerate().map(|(i, &d)| (d, i)).collect();

                // GEN per block + whether the block kills (strong def).
                let mut gen = vec![vec![0u64; words]; nblocks];
                let mut kills = vec![false; nblocks];
                for bi in 0..nblocks {
                    for &(is_def, id, strong) in &events[bi] {
                        if !is_def {
                            continue;
                        }
                        if strong {
                            gen[bi].iter_mut().for_each(|w| *w = 0);
                            kills[bi] = true;
                        }
                        let l = local_of[&id];
                        gen[bi][l / 64] |= 1u64 << (l % 64);
                    }
                }

                // IN/OUT fixpoint: IN[B] = ⋃ OUT[pred];
                // OUT[B] = GEN[B] ∪ (IN[B] unless B kills).
                let mut ins = vec![vec![0u64; words]; nblocks];
                let mut outs = vec![vec![0u64; words]; nblocks];
                let mut changed = true;
                while changed {
                    changed = false;
                    for bi in 0..nblocks {
                        let b = cfg.block(bi as u32);
                        let mut inb = vec![0u64; words];
                        for p in cfg.predecessors(b) {
                            let pi = cfg.local(p) as usize;
                            for (w, &pw) in inb.iter_mut().zip(&outs[pi]) {
                                *w |= pw;
                            }
                        }
                        let mut outb = gen[bi].clone();
                        if !kills[bi] {
                            for (w, &iw) in outb.iter_mut().zip(&inb) {
                                *w |= iw;
                            }
                        }
                        if inb != ins[bi] || outb != outs[bi] {
                            ins[bi] = inb;
                            outs[bi] = outb;
                            changed = true;
                        }
                    }
                }

                // Final pass: at each use, the reaching set is the
                // running in-block state started from IN[B].
                for bi in 0..nblocks {
                    let mut cur = ins[bi].clone();
                    for &(is_def, id, strong) in &events[bi] {
                        if is_def {
                            if strong {
                                cur.iter_mut().for_each(|w| *w = 0);
                            }
                            let l = local_of[&id];
                            cur[l / 64] |= 1u64 << (l % 64);
                        } else {
                            for (wi, &w) in cur.iter().enumerate() {
                                let mut bits = w;
                                while bits != 0 {
                                    let l = wi * 64 + bits.trailing_zeros() as usize;
                                    bits &= bits - 1;
                                    let d = local_defs[l];
                                    self.reach[d as usize].push((id, EMPTY));
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Topological ranks over instructions, from the static dependence
    /// graph: SSA def-use edges, memory reach edges, parameter flow,
    /// and every *candidate* call binding from the auxiliary call
    /// graph (so edges activated mid-solve are already ranked —
    /// mirroring `schedule::svfg_schedule`).
    fn inst_ranks(&self) -> Vec<u32> {
        let mut g: DiGraph<InstId> = DiGraph::with_nodes(self.prog.insts.len());
        for v in self.prog.values.indices() {
            if let Some(d) = DefUse::def_inst(self.prog, v) {
                for &u in self.defuse.uses(v) {
                    g.add_edge(d, u);
                }
            }
        }
        for (d, edges) in self.reach.iter().enumerate() {
            let di = self.defs[d].inst;
            for &(u, _) in edges {
                g.add_edge(di, self.uses[u as usize].inst);
            }
        }
        for (_, func) in self.prog.functions.iter_enumerated() {
            for &p in &func.params {
                for &u in self.defuse.uses(p) {
                    g.add_edge(func.entry_inst, u);
                }
            }
        }
        for (call, inst) in self.prog.insts.iter_enumerated() {
            if !matches!(inst.kind, InstKind::Call { .. }) {
                continue;
            }
            for &f in self.aux.callgraph.callees(call) {
                let func = &self.prog.functions[f];
                g.add_edge(call, func.entry_inst);
                g.add_edge(func.exit_inst, call);
            }
        }
        condensation_ranks(&g)
    }

    fn solve_governed(&mut self, governor: Option<&Governor>) -> Completion {
        while let Some(inst) = self.worklist.pop() {
            if let Some(g) = governor {
                if let Err(reason) = g.check(1) {
                    return Completion::Degraded(reason);
                }
            }
            self.stats.node_pops += 1;
            self.process(inst);
        }
        Completion::Complete
    }

    fn process(&mut self, inst: InstId) {
        self.transfer_top(inst);
        // µ phase: loads pull their accumulated values, gated by the
        // evolving pt(addr) — exactly SFS's `[LOAD]` dynamic gate.
        for k in 0..self.uses_at[inst].len() {
            let u = self.uses_at[inst][k];
            let UseEvent { obj, kind, .. } = &self.uses[u as usize];
            if let UseKind::Load { addr, dst } = kind {
                let (obj, addr, dst) = (*obj, *addr, *dst);
                if self.store.contains(self.pt[addr], obj) {
                    let v = self.uval[u as usize];
                    self.union_pt(dst, v);
                }
            }
        }
        // χ phase: re-evaluate generated values, ship growth.
        for k in 0..self.defs_at[inst].len() {
            let d = self.defs_at[inst][k];
            let new = self.eval_def(d);
            if new != self.val[d as usize] {
                self.val[d as usize] = new;
                self.ship(d);
            }
        }
    }

    /// The value def `d` currently generates (monotone in the solver
    /// state: pt sets and use accumulators only grow, gates only open).
    fn eval_def(&mut self, d: u32) -> PtsId {
        self.stats.object_propagations += 1;
        let obj = self.defs[d as usize].obj;
        match self.defs[d as usize].kind {
            DefKind::Store { addr, val, strong } => {
                if strong {
                    self.stats.strong_updates += 1;
                    self.pt[val]
                } else if self.store.contains(self.pt[addr], obj) {
                    self.pt[val]
                } else {
                    EMPTY
                }
            }
            DefKind::Entry | DefKind::CallRet => {
                let mut v = self.val[d as usize];
                for k in 0..self.producers[d as usize].len() {
                    let u = self.producers[d as usize][k];
                    v = self.store.union(v, self.uval[u as usize]);
                }
                v
            }
        }
    }

    /// Ships def `d`'s value past each reach edge's frontier into the
    /// target use's accumulator; on growth, re-queues the consumers.
    /// Differential and exact, as in `SfsSolver::ship_delta`.
    fn ship(&mut self, d: u32) {
        let v = self.val[d as usize];
        for k in 0..self.reach[d as usize].len() {
            let (u, last) = self.reach[d as usize][k];
            self.stats.object_propagations += 1;
            if v == last {
                self.stats.unions_avoided += 1;
                continue;
            }
            self.stats.full_bytes += self.store.flat_bytes(v);
            let delta = self.store.diff(v, last);
            self.stats.delta_bytes += self.store.flat_bytes(delta);
            self.reach[d as usize][k].1 = v;
            let cur = self.uval[u as usize];
            if delta == EMPTY || !self.store.union_would_change(cur, delta) {
                self.stats.unions_avoided += 1;
                continue;
            }
            self.uval[u as usize] = self.store.union(cur, delta);
            for ci in 0..self.consumers[u as usize].len() {
                let c = self.consumers[u as usize][ci];
                self.worklist.push(c);
            }
        }
    }

    // ----- top-level transfer (shared semantics with `TopLevel`) -----

    fn union_pt(&mut self, v: ValueId, add: PtsId) -> bool {
        let new = self.store.union(self.pt[v], add);
        if new == self.pt[v] {
            return false;
        }
        self.pt[v] = new;
        for &u in self.defuse.uses(v) {
            self.worklist.push(u);
        }
        true
    }

    fn insert_pt(&mut self, v: ValueId, obj: ObjId) -> bool {
        let new = self.store.insert(self.pt[v], obj);
        if new == self.pt[v] {
            return false;
        }
        self.pt[v] = new;
        for &u in self.defuse.uses(v) {
            self.worklist.push(u);
        }
        true
    }

    fn is_strong_update(&self, p: ValueId, o: ObjId) -> bool {
        self.singletons.contains(o) && self.aux.value_pts(p).as_singleton() == Some(o)
    }

    fn transfer_top(&mut self, inst: InstId) {
        match &self.prog.insts[inst].kind {
            InstKind::Alloc { dst, obj } => {
                self.insert_pt(*dst, *obj);
            }
            InstKind::Copy { dst, src } => {
                let s = self.pt[*src];
                self.union_pt(*dst, s);
            }
            InstKind::Phi { dst, srcs } => {
                let mut s = EMPTY;
                for &src in srcs {
                    s = self.store.union(s, self.pt[src]);
                }
                self.union_pt(*dst, s);
            }
            InstKind::Field { dst, base, offset } => {
                let objs: Vec<ObjId> = self.store.iter_set(self.pt[*base]).collect();
                for o in objs {
                    let fo = self.prog.field_object(o, *offset);
                    self.insert_pt(*dst, fo);
                }
            }
            InstKind::Call { callee, args, .. } => {
                match callee {
                    Callee::Direct(f) => {
                        self.activate(inst, *f);
                    }
                    Callee::Indirect(fp) => {
                        let candidates: Vec<FuncId> = self
                            .store
                            .iter_set(self.pt[*fp])
                            .filter_map(|o| self.prog.object_as_function(o))
                            .collect();
                        for f in candidates {
                            self.activate(inst, f);
                        }
                    }
                }
                let callees = self.active_callees.get(&inst).map_or(Vec::new(), |v| v.clone());
                let args = args.clone();
                for f in callees {
                    let params = self.prog.functions[f].params.clone();
                    for (a, p) in args.iter().zip(params.iter()) {
                        let s = self.pt[*a];
                        self.union_pt(*p, s);
                    }
                }
            }
            InstKind::FunExit { func, ret } => {
                if let Some(r) = ret {
                    let s = self.pt[*r];
                    let callers = self.active_callers.get(func).map_or(Vec::new(), |v| v.clone());
                    for call in callers {
                        if let InstKind::Call { dst: Some(d), .. } = self.prog.insts[call].kind {
                            self.union_pt(d, s);
                        }
                    }
                }
            }
            InstKind::Load { .. }
            | InstKind::Store { .. }
            | InstKind::Free { .. }
            | InstKind::FunEntry { .. } => {}
        }
    }

    /// Activates a `(call, callee)` edge: wires the µ→χ binding flow
    /// (callers' call-µ into the callee entry χ, callee exit-µ into the
    /// call-return χ) and queues the callee's entry and exit.
    fn activate(&mut self, call: InstId, callee: FuncId) {
        if !self.activated.insert((call, callee)) {
            return;
        }
        self.stats.calls_activated += 1;
        self.active_callees.entry(call).or_default().push(callee);
        self.active_callers.entry(callee).or_default().push(call);
        let func = &self.prog.functions[callee];
        let (entry, exit) = (func.entry_inst, func.exit_inst);
        // ins(call, callee): objects both used at the call site and
        // live-in at the callee — same intersection as the SVFG's
        // call binding.
        for k in 0..self.uses_at[call].len() {
            let u = self.uses_at[call][k];
            if !matches!(self.uses[u as usize].kind, UseKind::CallMu) {
                continue;
            }
            let o = self.uses[u as usize].obj;
            if let Some(&d) = self.def_index.get(&(entry, o)) {
                self.producers[d as usize].push(u);
                self.consumers[u as usize].push(entry);
            }
        }
        // outs(call, callee): objects the callee summary-modifies that
        // the call site also defines.
        for k in 0..self.defs_at[call].len() {
            let d = self.defs_at[call][k];
            if !matches!(self.defs[d as usize].kind, DefKind::CallRet) {
                continue;
            }
            let o = self.defs[d as usize].obj;
            if let Some(&u) = self.use_index.get(&(exit, o)) {
                self.producers[d as usize].push(u);
                self.consumers[u as usize].push(call);
            }
        }
        // The callee's entry must (re)run to merge the new caller's
        // state; the exit to publish its return value (and its exit-µ
        // accumulators into this call's return χ, which the current
        // pop's χ phase picks up when the activation came from `call`
        // itself).
        self.worklist.push(entry);
        self.worklist.push(exit);
        self.worklist.push(call);
    }

    /// `(set count, total elements, approximate heap bytes)` across the
    /// def/use accumulators — the Table III storage analogue.
    fn storage_stats(&self) -> (usize, usize, usize) {
        let mut sets = 0;
        let mut elems = 0;
        let mut bytes = 0;
        for &id in self.val.iter().chain(self.uval.iter()) {
            if id == EMPTY {
                continue;
            }
            sets += 1;
            elems += self.store.set_len(id);
            bytes += self.store.flat_bytes(id);
        }
        (sets, elems, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsfs_ir::parse_program;

    fn solve(src: &str) -> (Program, FlowSensitiveResult) {
        let prog = parse_program(src).unwrap();
        vsfs_ir::verify::verify(&prog).unwrap();
        let aux = vsfs_andersen::analyze(&prog);
        let r = run_cfgfree(&prog, &aux);
        (prog, r)
    }

    fn pts(prog: &Program, r: &FlowSensitiveResult, name: &str) -> Vec<String> {
        let v = prog
            .values
            .iter_enumerated()
            .find(|(_, val)| val.name == name)
            .map(|(id, _)| id)
            .unwrap();
        let mut names: Vec<String> =
            r.value_pts(v).iter().map(|o| prog.objects[o].name.clone()).collect();
        names.sort();
        names
    }

    #[test]
    fn strong_update_kills_previous_store() {
        let (prog, r) = solve(
            r#"
            func @main() {
            entry:
              %p = alloc stack P
              %h1 = alloc heap H1
              %h2 = alloc heap H2
              store %h1, %p
              %x = load %p
              store %h2, %p
              %y = load %p
              ret
            }
            "#,
        );
        assert_eq!(pts(&prog, &r, "x"), vec!["H1"], "first load sees only H1");
        assert_eq!(pts(&prog, &r, "y"), vec!["H2"], "strong update killed H1");
        assert!(r.stats.strong_updates > 0);
    }

    #[test]
    fn two_level_loads() {
        let (prog, r) = solve(
            r#"
            func @main() {
            entry:
              %pp = alloc stack PP
              %p = alloc stack P
              %h = alloc heap H
              store %p, %pp
              store %h, %p
              %p2 = load %pp
              %v = load %p2
              ret
            }
            "#,
        );
        assert_eq!(pts(&prog, &r, "p2"), vec!["P"]);
        assert_eq!(pts(&prog, &r, "v"), vec!["H"]);
    }

    #[test]
    fn weak_update_into_heap_accumulates() {
        let (prog, r) = solve(
            r#"
            func @main() {
            entry:
              %h = alloc heap Cell
              %a = alloc heap A
              %b = alloc heap B
              store %a, %h
              store %b, %h
              %v = load %h
              ret
            }
            "#,
        );
        assert_eq!(pts(&prog, &r, "v"), vec!["A", "B"], "heap stores are weak");
        assert_eq!(r.stats.strong_updates, 0);
    }

    #[test]
    fn interprocedural_state_flows_through_calls() {
        let (prog, r) = solve(
            r#"
            func @write(%q) {
            entry:
              %h = alloc heap FromCallee
              store %h, %q
              ret
            }
            func @main() {
            entry:
              %p = alloc stack Cell
              %r = call @write(%p)
              %v = load %p
              ret
            }
            "#,
        );
        assert_eq!(pts(&prog, &r, "v"), vec!["FromCallee"]);
    }

    #[test]
    fn matches_sfs_on_branchy_and_indirect_programs() {
        let srcs = [
            r#"
            global @tab
            func @first(%x) {
            entry:
              ret %x
            }
            func @second(%x) {
            entry:
              %h = alloc heap FromSecond
              ret %h
            }
            func @main() {
            entry:
              %f1 = funaddr @first
              store %f1, @tab
              %fp = load @tab
              %arg = alloc heap Arg
              %r = icall %fp(%arg)
              %f2 = funaddr @second
              store %f2, @tab
              ret
            }
            "#,
            r#"
            func @main() {
            entry:
              %p = alloc stack Cell
              %a = alloc heap A
              %b = alloc heap B
              br then, else
            then:
              store %a, %p
              goto join
            else:
              store %b, %p
              goto join
            join:
              %v = load %p
              ret
            }
            "#,
        ];
        for src in srcs {
            let prog = parse_program(src).unwrap();
            vsfs_ir::verify::verify(&prog).unwrap();
            let aux = vsfs_andersen::analyze(&prog);
            let mssa = vsfs_mssa::MemorySsa::build(&prog, &aux);
            let svfg = vsfs_svfg::Svfg::build(&prog, &aux, &mssa);
            let sfs = crate::run_sfs(&prog, &aux, &mssa, &svfg);
            let cf = run_cfgfree(&prog, &aux);
            assert_eq!(
                crate::precision_diff(&prog, &sfs, &cf),
                None,
                "cfgfree must be query-identical to sfs"
            );
        }
    }

    #[test]
    fn fifo_and_topo_orders_agree() {
        let src = r#"
            func @id(%x) {
            entry:
              ret %x
            }
            func @main() {
            entry:
              %p = alloc stack P
              %h = alloc heap H
              store %h, %p
              %v = load %p
              %r = call @id(%v)
              ret
            }
            "#;
        let prog = parse_program(src).unwrap();
        vsfs_ir::verify::verify(&prog).unwrap();
        let aux = vsfs_andersen::analyze(&prog);
        let fifo = run_cfgfree_ordered(&prog, &aux, SolveOrder::Fifo);
        let topo = run_cfgfree_ordered(&prog, &aux, SolveOrder::Topo);
        assert_eq!(crate::precision_diff(&prog, &fifo, &topo), None);
    }

    #[test]
    fn governed_run_degrades_to_andersen() {
        use vsfs_adt::govern::Budget;
        let src = r#"
            func @main() {
            entry:
              %p = alloc stack P
              %h = alloc heap H
              store %h, %p
              %v = load %p
              ret
            }
            "#;
        let prog = parse_program(src).unwrap();
        vsfs_ir::verify::verify(&prog).unwrap();
        let aux = vsfs_andersen::analyze(&prog);
        let governor = Governor::new(Budget::unlimited().with_steps(1));
        let out = run_cfgfree_governed(&prog, &aux, &governor);
        assert!(!out.is_complete());
        assert_eq!(out.mode, "flow-insensitive-fallback");
        // Sound: the fallback covers the complete answer.
        let full = run_cfgfree(&prog, &aux);
        for v in prog.values.indices() {
            for o in full.value_pts(v).iter() {
                assert!(out.result.value_pts(v).contains(o));
            }
        }
    }
}

//! The versioned staged flow-sensitive solver (VSFS, Section IV-D).
//!
//! Points-to sets of address-taken objects live in a single global table
//! indexed by `(object, version)` slots. The solver interleaves two
//! worklists:
//!
//! * a **version worklist** implementing `[A-PROP]^F`: when a slot's set
//!   grows, it is pushed along the (deduplicated) version reliance edges,
//!   and the instruction nodes consuming the grown slots are re-enqueued;
//! * a **node worklist** implementing the remaining rules: top-level
//!   transfers, `[LOAD]^F` (read the consumed slot), `[STORE]^F` +
//!   `[SU/WU]^F` (write the yielded slot, killing the consumed one on a
//!   strong update), and `[CALL]^F`/`[RET]^F` with on-the-fly call-graph
//!   activation, which adds new reliance edges for δ nodes.
//!
//! Because most SVFG nodes share versions with their neighbours, the
//! version worklist touches far fewer sets than SFS's per-node `IN`/`OUT`
//! propagation — the paper's single-object sparsity.

use crate::region::RegionMemo;
use crate::result::{FlowSensitiveResult, GovernedAnalysis, SolveStats};
use crate::schedule::{slot_ranks, svfg_schedule, SolveConfig, SolveOrder};
use crate::toplevel::{TopLevel, EMPTY};
use crate::versioning::{VersionSlot, VersionTables};
use std::time::Instant;
use vsfs_adt::govern::{Completion, Governor};
use vsfs_adt::{PtsId, Worklist};
use vsfs_andersen::AndersenResult;
use vsfs_ir::{FuncId, InstId, InstKind, ObjId, Program};
use vsfs_mssa::MemorySsa;
use vsfs_svfg::{Svfg, SvfgNodeId, SvfgNodeKind};

/// Runs versioning and the VSFS solver under the default (topological)
/// schedule.
pub fn run_vsfs(
    prog: &Program,
    aux: &AndersenResult,
    mssa: &MemorySsa,
    svfg: &Svfg,
) -> FlowSensitiveResult {
    run_vsfs_ordered(prog, aux, mssa, svfg, SolveOrder::default())
}

/// [`run_vsfs`] with an explicit worklist [`SolveOrder`]. The fixpoint
/// is order-independent; only the visit counts change.
pub fn run_vsfs_ordered(
    prog: &Program,
    aux: &AndersenResult,
    mssa: &MemorySsa,
    svfg: &Svfg,
    order: SolveOrder,
) -> FlowSensitiveResult {
    let tables = VersionTables::build(prog, mssa, svfg);
    run_vsfs_with_tables_ordered(prog, aux, mssa, svfg, tables, order)
}

/// [`run_vsfs`] with a full [`SolveConfig`].
pub fn run_vsfs_configured(
    prog: &Program,
    aux: &AndersenResult,
    mssa: &MemorySsa,
    svfg: &Svfg,
    config: SolveConfig,
) -> FlowSensitiveResult {
    let tables = VersionTables::build(prog, mssa, svfg);
    run_vsfs_with_tables_configured(prog, aux, mssa, svfg, tables, config)
}

/// Runs versioning with `jobs` worker threads, then the VSFS solver.
/// Results are bit-identical to [`run_vsfs`] for every job count.
pub fn run_vsfs_jobs(
    prog: &Program,
    aux: &AndersenResult,
    mssa: &MemorySsa,
    svfg: &Svfg,
    jobs: usize,
) -> FlowSensitiveResult {
    run_vsfs_jobs_ordered(prog, aux, mssa, svfg, jobs, SolveOrder::default())
}

/// [`run_vsfs_jobs`] with an explicit worklist [`SolveOrder`].
pub fn run_vsfs_jobs_ordered(
    prog: &Program,
    aux: &AndersenResult,
    mssa: &MemorySsa,
    svfg: &Svfg,
    jobs: usize,
    order: SolveOrder,
) -> FlowSensitiveResult {
    run_vsfs_jobs_configured(prog, aux, mssa, svfg, jobs, SolveConfig::from(order))
}

/// [`run_vsfs_jobs`] with a full [`SolveConfig`].
pub fn run_vsfs_jobs_configured(
    prog: &Program,
    aux: &AndersenResult,
    mssa: &MemorySsa,
    svfg: &Svfg,
    jobs: usize,
    config: SolveConfig,
) -> FlowSensitiveResult {
    let tables = VersionTables::build_with_jobs(prog, mssa, svfg, jobs);
    run_vsfs_with_tables_configured(prog, aux, mssa, svfg, tables, config)
}

/// Runs the VSFS solver with pre-built version tables (lets benchmarks
/// time the versioning and main phases separately).
pub fn run_vsfs_with_tables(
    prog: &Program,
    aux: &AndersenResult,
    mssa: &MemorySsa,
    svfg: &Svfg,
    tables: VersionTables,
) -> FlowSensitiveResult {
    run_vsfs_with_tables_ordered(prog, aux, mssa, svfg, tables, SolveOrder::default())
}

/// [`run_vsfs_with_tables`] with an explicit worklist [`SolveOrder`].
pub fn run_vsfs_with_tables_ordered(
    prog: &Program,
    aux: &AndersenResult,
    mssa: &MemorySsa,
    svfg: &Svfg,
    tables: VersionTables,
    order: SolveOrder,
) -> FlowSensitiveResult {
    run_vsfs_with_tables_configured(prog, aux, mssa, svfg, tables, SolveConfig::from(order))
}

/// [`run_vsfs_with_tables`] with a full [`SolveConfig`] (worklist order
/// plus the region memo switch). Results are bit-identical across every
/// configuration.
pub fn run_vsfs_with_tables_configured(
    prog: &Program,
    aux: &AndersenResult,
    mssa: &MemorySsa,
    svfg: &Svfg,
    tables: VersionTables,
    config: SolveConfig,
) -> FlowSensitiveResult {
    solve_with_tables(prog, aux, mssa, svfg, tables, None, config).0
}

/// Runs the full governed VSFS pipeline: governed versioning, then the
/// governed fixpoint. On a trip in either stage the returned
/// [`GovernedAnalysis`] carries the *sound* Andersen fallback instead of
/// a partial flow-sensitive result, tagged with the stage and reason.
pub fn run_vsfs_governed(
    prog: &Program,
    aux: &AndersenResult,
    mssa: &MemorySsa,
    svfg: &Svfg,
    jobs: usize,
    governor: &Governor,
) -> GovernedAnalysis {
    run_vsfs_governed_ordered(prog, aux, mssa, svfg, jobs, governor, SolveOrder::default())
}

/// [`run_vsfs_governed`] with an explicit worklist [`SolveOrder`].
pub fn run_vsfs_governed_ordered(
    prog: &Program,
    aux: &AndersenResult,
    mssa: &MemorySsa,
    svfg: &Svfg,
    jobs: usize,
    governor: &Governor,
    order: SolveOrder,
) -> GovernedAnalysis {
    run_vsfs_governed_configured(prog, aux, mssa, svfg, jobs, governor, SolveConfig::from(order))
}

/// [`run_vsfs_governed`] with a full [`SolveConfig`].
pub fn run_vsfs_governed_configured(
    prog: &Program,
    aux: &AndersenResult,
    mssa: &MemorySsa,
    svfg: &Svfg,
    jobs: usize,
    governor: &Governor,
    config: SolveConfig,
) -> GovernedAnalysis {
    let vt = VersionTables::build_governed(prog, mssa, svfg, jobs, governor);
    if let Completion::Degraded(reason) = vt.completion {
        return GovernedAnalysis::fallback(prog, aux, "versioning", reason);
    }
    let (result, completion) =
        solve_with_tables(prog, aux, mssa, svfg, vt.result, Some(governor), config);
    match completion {
        Completion::Complete => GovernedAnalysis::complete(result),
        Completion::Degraded(reason) => GovernedAnalysis::fallback(prog, aux, "solve", reason),
    }
}

/// Shared driver: solve with pre-built tables, optionally governed.
fn solve_with_tables(
    prog: &Program,
    aux: &AndersenResult,
    mssa: &MemorySsa,
    svfg: &Svfg,
    tables: VersionTables,
    governor: Option<&Governor>,
    config: SolveConfig,
) -> (FlowSensitiveResult, Completion) {
    let versioning = tables.stats;
    let start = Instant::now();
    let mut solver = VsfsSolver::new(prog, aux, mssa, svfg, tables, config);
    let completion = solver.solve_governed(governor);
    let mut stats = solver.stats;
    stats.solve_seconds = start.elapsed().as_secs_f64();
    stats.pushes_suppressed = solver.nodes.stats().suppressed + solver.slots.stats().suppressed;
    stats.versioning_seconds = versioning.seconds;
    stats.prelabels = versioning.prelabels;
    stats.versions = versioning.versions;
    stats.reliance_edges = versioning.reliance_edges;
    let (sets, elems, bytes) = solver.storage_stats();
    stats.stored_object_sets = sets;
    stats.stored_object_elems = elems;
    stats.stored_object_bytes = bytes;
    stats.store = solver.top.store.stats();
    let callgraph_edges = solver.top.callgraph_edges();
    (FlowSensitiveResult::new(solver.top.store, solver.top.pt, callgraph_edges, stats), completion)
}

struct VsfsSolver<'a> {
    prog: &'a Program,
    mssa: &'a MemorySsa,
    svfg: &'a Svfg,
    top: TopLevel<'a>,
    tables: VersionTables,
    /// Global points-to table: one hash-consed set id per
    /// `(object, version)` slot, resolved through `top.store`. Slots
    /// holding equal sets share one canonical copy.
    vpts: Vec<PtsId>,
    /// Nodes to re-run when a slot's set grows (loads and stores that
    /// consume it), indexed by slot. The flag is `false` when the
    /// consumer is a store that statically strong-updates the slot's
    /// object — it is re-queued (the registration predates the memo) but
    /// never reads the consumed state, so the growth is not an effective
    /// input delivery for the region memo.
    consumers: Vec<Vec<(SvfgNodeId, bool)>>,
    /// Region-level operation memoization (see `crate::region`).
    memo: RegionMemo,
    /// Difference-propagation frontier per reliance edge: the set id last
    /// shipped along `tables.reliance(s)[i]`. Only `diff(value, last)`
    /// crosses an edge again.
    rel_frontier: Vec<Vec<PtsId>>,
    nodes: Worklist<SvfgNodeId>,
    slots: Worklist<usize>,
    stats: SolveStats,
}

impl<'a> VsfsSolver<'a> {
    fn new(
        prog: &'a Program,
        aux: &'a AndersenResult,
        mssa: &'a MemorySsa,
        svfg: &'a Svfg,
        tables: VersionTables,
        config: SolveConfig,
    ) -> Self {
        let top = TopLevel::new(prog, aux, svfg);
        let (ranks, comps) = svfg_schedule(prog, svfg);
        let mut nodes = match config.order {
            SolveOrder::Fifo => Worklist::fifo(svfg.node_count()),
            SolveOrder::Topo => Worklist::priority(ranks),
        };
        let memo = RegionMemo::new(prog, svfg, comps, config.region_memo);
        for id in svfg.node_ids() {
            nodes.push(id);
        }
        let slots = match config.order {
            SolveOrder::Fifo => Worklist::fifo(tables.slot_count() as usize),
            SolveOrder::Topo => Worklist::priority(slot_ranks(prog, svfg, &tables)),
        };
        // Register consumers: loads re-run when their consumed slot grows
        // (to extend pt(dst)); stores re-run to weak-update their yield.
        let slot_count = tables.slot_count() as usize;
        let mut consumers: Vec<Vec<(SvfgNodeId, bool)>> = vec![Vec::new(); slot_count];
        for (i, inst) in prog.insts.iter_enumerated() {
            match &inst.kind {
                InstKind::Load { .. } => {
                    let n = svfg.inst_node(i);
                    for mu in mssa.mus(i) {
                        if let Some(c) = tables.consume_slot(n, mu.obj) {
                            consumers[c as usize].push((n, true));
                        }
                    }
                }
                InstKind::Store { addr, .. } => {
                    let n = svfg.inst_node(i);
                    for chi in mssa.chis(i) {
                        if let Some(c) = tables.consume_slot(n, chi.obj) {
                            consumers[c as usize].push((n, !top.is_strong_update(*addr, chi.obj)));
                        }
                    }
                }
                _ => {}
            }
        }
        let rel_frontier =
            (0..slot_count).map(|y| vec![EMPTY; tables.reliance(y as VersionSlot).len()]).collect();
        VsfsSolver {
            prog,
            mssa,
            svfg,
            top,
            tables,
            vpts: vec![EMPTY; slot_count],
            consumers,
            memo,
            rel_frontier,
            nodes,
            slots,
            stats: SolveStats::default(),
        }
    }

    /// The fixpoint loop, with one cooperative governor checkpoint per
    /// worklist pop (both worklists). Pops are sequential, so a governed
    /// trip lands at the same logical step regardless of how the version
    /// tables were built — the basis of the cross-`jobs` determinism
    /// tests. Ungoverned (`None`) this is the plain fixpoint.
    fn solve_governed(&mut self, governor: Option<&Governor>) -> Completion {
        loop {
            // Drain version propagation first ([A-PROP]^F): it is cheap
            // and unlocks node work.
            while let Some(s) = self.slots.pop() {
                if let Some(g) = governor {
                    if let Err(reason) = g.check(1) {
                        return Completion::Degraded(reason);
                    }
                }
                self.stats.slot_pops += 1;
                self.propagate_slot(s as VersionSlot);
            }
            let Some(node) = self.nodes.pop() else {
                if self.slots.is_empty() {
                    break;
                }
                continue;
            };
            if let Some(g) = governor {
                if let Err(reason) = g.check(1) {
                    return Completion::Degraded(reason);
                }
            }
            self.stats.node_pops += 1;
            if self.memo.admit(node, &self.top.pt, &mut self.stats) {
                self.process_node(node);
            }
        }
        Completion::Complete
    }

    /// Ships the growth of slot `s` along its reliance edges. Each edge
    /// remembers the set id it last shipped, and only `diff(value, last)`
    /// crosses again — exact, because slot values grow monotonically, so
    /// the consumer already covers everything shipped before.
    fn propagate_slot(&mut self, s: VersionSlot) {
        let val = self.vpts[s as usize];
        let n_succs = self.tables.reliance(s).len();
        for i in 0..n_succs {
            let c = self.tables.reliance(s)[i];
            self.stats.object_propagations += 1;
            let last = self.rel_frontier[s as usize][i];
            if val == last {
                // Frontier already current: nothing new can flow.
                self.stats.unions_avoided += 1;
                continue;
            }
            self.stats.full_bytes += self.top.store.flat_bytes(val);
            let delta = self.top.store.diff(val, last);
            self.stats.delta_bytes += self.top.store.flat_bytes(delta);
            self.rel_frontier[s as usize][i] = val;
            let cur = self.vpts[c as usize];
            if delta == EMPTY || !self.top.store.union_would_change(cur, delta) {
                self.stats.unions_avoided += 1;
                continue;
            }
            let new = self.top.store.union(cur, delta);
            self.vpts[c as usize] = new;
            self.slot_grew(c);
        }
    }

    fn slot_grew(&mut self, c: VersionSlot) {
        self.slots.push(c as usize);
        let n_consumers = self.consumers[c as usize].len();
        for i in 0..n_consumers {
            let (n, effective) = self.consumers[c as usize][i];
            if effective {
                self.memo.invalidate(n);
            }
            self.nodes.push(n);
        }
    }

    fn process_node(&mut self, node: SvfgNodeId) {
        let SvfgNodeKind::Inst(inst) = self.svfg.kind(node) else {
            return; // MEMPHIs/CallRets need no processing: versions flow directly.
        };
        let mut newly_activated = Vec::new();
        self.top.transfer(inst, &mut self.nodes, &mut newly_activated);
        for (call, callee) in newly_activated {
            self.activate_binding(call, callee);
        }
        match &self.prog.insts[inst].kind {
            InstKind::Load { dst, addr } => {
                // [LOAD]^F: pt(dst) ⊇ pt_{C_ℓ(o)}(o) for o ∈ pt(addr).
                let objs: Vec<ObjId> = self.top.value_pt_iter(*addr).collect();
                for o in objs {
                    if let Some(c) = self.tables.consume_slot(node, o) {
                        let s = self.vpts[c as usize];
                        self.top.union_pt(*dst, s, &mut self.nodes);
                    }
                }
            }
            InstKind::Store { addr, val } => {
                // [STORE]^F + [SU/WU]^F.
                let (addr, val) = (*addr, *val);
                let n_chis = self.mssa.chis(inst).len();
                for ci in 0..n_chis {
                    let chi = self.mssa.chis(inst)[ci];
                    let o = chi.obj;
                    let Some(y) = self.tables.yield_slot(node, o) else { continue };
                    let y = y as usize;
                    let is_target = self.top.value_pt_contains(addr, o);
                    // Static strong/weak decision (see
                    // `TopLevel::is_strong_update`).
                    let su = self.top.is_strong_update(addr, o);
                    let mut grew = false;
                    if su {
                        self.stats.strong_updates += 1;
                        // Kill: the consumed version is not propagated;
                        // only gen enters the yielded version.
                        self.stats.object_propagations += 1;
                        let new = self.top.store.union(self.vpts[y], self.top.pt[val]);
                        grew |= new != self.vpts[y];
                        self.vpts[y] = new;
                    } else if let Some(c) = self.tables.consume_slot(node, o) {
                        // Weak update: the consumed version survives. In a
                        // loop a store can consume its own yield (c == y),
                        // which is already a no-op.
                        if c as usize != y {
                            self.stats.object_propagations += 1;
                            let new = self.top.store.union(self.vpts[y], self.vpts[c as usize]);
                            grew |= new != self.vpts[y];
                            self.vpts[y] = new;
                        }
                    }
                    if !su && is_target {
                        // gen: pt(q) enters the yielded version.
                        self.stats.object_propagations += 1;
                        let new = self.top.store.union(self.vpts[y], self.top.pt[val]);
                        grew |= new != self.vpts[y];
                        self.vpts[y] = new;
                    }
                    if grew {
                        self.slot_grew(y as VersionSlot);
                    }
                }
            }
            _ => {}
        }
    }

    /// On-the-fly activation: adds the version reliance edges for a newly
    /// proven `(call, callee)` pair and propagates immediately.
    fn activate_binding(&mut self, call: InstId, callee: FuncId) {
        self.stats.calls_activated += 1;
        // The grown caller list is input to the callee's `FUNEXIT`
        // transfer (it publishes its return to the new caller), so the
        // exit pop `TopLevel::activate` queued must not be skipped. The
        // entry pop it queued needs no bump: `FUNENTRY` has no transfer,
        // and caller slot state arrives through the consume edges wired
        // below, whose deliveries bump on their own.
        let f = &self.prog.functions[callee];
        self.memo.invalidate(self.svfg.inst_node(f.exit_inst));
        let Some(binding) = self.svfg.call_binding(call, callee) else {
            return; // direct call: reliance edges were built statically
        };
        let binding = binding.clone();
        let call_node = self.svfg.inst_node(call);
        let ret_node = self.svfg.callret_node(call);
        let entry_node = self.svfg.inst_node(self.prog.functions[callee].entry_inst);
        let exit_node = self.svfg.inst_node(self.prog.functions[callee].exit_inst);
        let mut pairs: Vec<(VersionSlot, VersionSlot)> = Vec::new();
        for o in binding.ins {
            if let (Some(y), Some(c)) =
                (self.tables.yield_slot(call_node, o), self.tables.consume_slot(entry_node, o))
            {
                pairs.push((y, c));
            }
        }
        for o in binding.outs {
            if let (Some(y), Some(c)) =
                (self.tables.yield_slot(exit_node, o), self.tables.consume_slot(ret_node, o))
            {
                pairs.push((y, c));
            }
        }
        for (y, c) in pairs {
            if self.tables.add_reliance(y, c) {
                self.stats.reliance_edges += 1;
                self.stats.object_propagations += 1;
                // Ship y's current value across the new edge immediately
                // and start the edge's frontier there; future growth of y
                // re-enters through `slot_grew` and ships only the delta.
                let val = self.vpts[y as usize];
                self.rel_frontier[y as usize].push(val);
                self.stats.full_bytes += self.top.store.flat_bytes(val);
                self.stats.delta_bytes += self.top.store.flat_bytes(val);
                let cur = self.vpts[c as usize];
                let new = self.top.store.union(cur, val);
                if new != cur {
                    self.vpts[c as usize] = new;
                    self.slot_grew(c);
                }
            }
        }
    }

    fn storage_stats(&self) -> (usize, usize, usize) {
        let sets = self.vpts.len();
        let mut elems = 0;
        let mut bytes = 0;
        for &id in &self.vpts {
            elems += self.top.store.set_len(id);
            bytes += self.top.store.flat_bytes(id);
        }
        (sets, elems, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsfs_ir::parse_program;

    fn solve(src: &str) -> (Program, FlowSensitiveResult) {
        let prog = parse_program(src).unwrap();
        vsfs_ir::verify::verify(&prog).unwrap();
        let aux = vsfs_andersen::analyze(&prog);
        let mssa = MemorySsa::build(&prog, &aux);
        let svfg = Svfg::build(&prog, &aux, &mssa);
        let r = run_vsfs(&prog, &aux, &mssa, &svfg);
        (prog, r)
    }

    fn pts(prog: &Program, r: &FlowSensitiveResult, name: &str) -> Vec<String> {
        let v = prog
            .values
            .iter_enumerated()
            .find(|(_, val)| val.name == name)
            .map(|(id, _)| id)
            .unwrap();
        let mut names: Vec<String> =
            r.value_pts(v).iter().map(|o| prog.objects[o].name.clone()).collect();
        names.sort();
        names
    }

    #[test]
    fn versions_share_across_load_chains() {
        // Ten loads of the same location after one store: one version,
        // no reliance edges needed between them.
        let src = r#"
            func @main() {
            entry:
              %p = alloc stack Cell array
              %h = alloc heap H
              store %h, %p
              %l1 = load %p
              %l2 = load %p
              %l3 = load %p
              %l4 = load %p
              %l5 = load %p
              ret
            }
            "#;
        let (prog, r) = solve(src);
        for l in ["l1", "l2", "l3", "l4", "l5"] {
            assert_eq!(pts(&prog, &r, l), vec!["H"]);
        }
        // One store -> one prelabel; loads share its yielded version.
        assert!(r.stats.versions <= 3, "versions = {}", r.stats.versions);
        assert_eq!(r.stats.reliance_edges, 0, "all edges collapsed");
    }

    #[test]
    fn delta_activation_flows_objects_through_indirect_calls() {
        let (prog, r) = solve(
            r#"
            global @state
            func @writer(%v) {
            entry:
              store %v, @state
              ret
            }
            func @main() {
            entry:
              %fp = funaddr @writer
              %h = alloc heap Payload
              icall %fp(%h)
              %got = load @state
              ret
            }
            "#,
        );
        assert_eq!(pts(&prog, &r, "got"), vec!["Payload"]);
        assert!(r.stats.calls_activated >= 1);
    }

    #[test]
    fn strong_update_kills_through_versions() {
        let (prog, r) = solve(
            r#"
            func @main() {
            entry:
              %p = alloc stack Cell
              %a = alloc heap A
              %b = alloc heap B
              store %a, %p
              %v1 = load %p
              store %b, %p
              %v2 = load %p
              ret
            }
            "#,
        );
        assert_eq!(pts(&prog, &r, "v1"), vec!["A"]);
        assert_eq!(pts(&prog, &r, "v2"), vec!["B"], "strong update kills A");
        assert_eq!(r.stats.strong_updates, 2);
    }
}

//! Incremental re-solving after function-granularity edits (DESIGN.md §9).
//!
//! A [`ProgramState`] keeps one program's full analysis pipeline resident:
//! source text, parsed [`Program`], auxiliary Andersen result, memory SSA,
//! SVFG, the delivered [`GovernedAnalysis`], and — when the last solve ran
//! to completion — *warm state*: the per-node `IN`/`OUT` tables of the SFS
//! fixpoint plus the [`StableKeys`] and per-node signatures they were
//! computed under.
//!
//! [`resolve_edit`] re-analyses a new version of the source against that
//! warm state:
//!
//! 1. **Correspondence.** Both parses get [`StableKeys`] — name/position
//!    hashes that survive arena renumbering. A node of the new parse
//!    corresponds to the old node with the same key.
//! 2. **Signatures.** Each node's transfer behaviour and incoming edges
//!    are hashed ([`node_signatures`]): instruction content, µ/χ
//!    structure (with the static strong-update bit for stores), memory-φ
//!    incoming defs, direct and indirect predecessors, and — for call,
//!    return-side, and `FUNENTRY` nodes — the auxiliary call-graph
//!    bindings that could wire dynamic edges to them. *Dirty seeds* are
//!    the new nodes with no old counterpart or a changed signature;
//!    removed nodes need no handling of their own because removal changes
//!    every surviving neighbour's signature.
//! 3. **Invalidation by audited waves.** Seeds are closed over their
//!    strongly-connected components of the *conservative* value-flow
//!    graph — static direct and indirect edges plus the candidate
//!    dynamic edges on-the-fly call resolution could activate
//!    (`call → FUNENTRY` and `FUNEXIT → return side` for every deferred
//!    binding pair, plus `call → return side`). The dirty region is
//!    re-solved from the carried frontier; an *audit* then compares, by
//!    stable key, every dirty node's recomputed outputs — top-level sets
//!    of the values it publishes (defs, call arguments, returns), the
//!    per-object value on each indirect edge into a clean node, and its
//!    resolved call activations — against the warm values. Clean
//!    successors whose incoming contributions actually changed are
//!    dirtied (again SCC-closed) and the solve repeats from the enlarged
//!    region. Once an audit passes untouched the combined state is the
//!    exact global least fixpoint: each clean SCC has bit-identical
//!    equations (signature) and boundary inputs (audit), so by induction
//!    over the SCC condensation it keeps its previous solution, and the
//!    dirty region was solved against exactly those values. SCC closure
//!    is what makes the frontier acyclic — it rules out stale facts that
//!    would otherwise sustain themselves around a cycle spanning the
//!    clean/dirty boundary. After [`MAX_AUDIT_WAVES`] audits, or once
//!    the region covers half the graph, the loop switches to the plain
//!    forward closure of the dirty set (audit-free and exact, at the
//!    price of re-solving everything downstream).
//! 4. **Seeding.** Clean nodes' `IN`/`OUT` entries, clean-defined
//!    top-level sets, and clean call activations are carried into a
//!    fresh-epoch [`vsfs_adt::PtsStore`] ([`vsfs_adt::PtsCarry`]) with
//!    objects remapped by key, then handed to the seeded SFS solver,
//!    which re-runs only the dirty region (`crate::sfs`).
//!
//! Any ambiguity (duplicate keys), failed remap, or dropped element
//! falls back to a from-scratch solve — incrementality is a pure
//! optimisation and never changes results, which is exactly what
//! `tests/incremental_equivalence.rs` checks. Every state carries a
//! [`result_fingerprint`]: an ID-independent hash of the delivered
//! points-to relation and call graph, equal across incremental and
//! from-scratch solves of the same text.

use crate::cfgfree::{run_cfgfree_governed_ordered, run_cfgfree_ordered};
use crate::dense::{run_dense, run_dense_governed};
use crate::result::{FlowSensitiveResult, GovernedAnalysis};
use crate::schedule::SolveOrder;
use crate::sfs::{run_sfs_seeded, SfsHarvest, SfsSeed};
use crate::solver::SolverKind;
use std::collections::{HashMap, HashSet};
use std::fmt;
use vsfs_adt::govern::{Completion, DegradeReason, Governor};
use vsfs_adt::{IndexVec, PtsCarry, PtsId};
use vsfs_andersen::{
    analyze_governed, analyze_unify, analyze_unify_governed, analyze_with_config, AndersenConfig,
    AndersenResult, UnifyConfig,
};
use vsfs_graph::{DiGraph, Sccs};
use vsfs_ir::{Callee, FuncId, InstId, InstKind, ObjId, ObjKind, Program, ValueId};
use vsfs_mssa::MemorySsa;
use vsfs_svfg::stable::{fnv1a, mix, mssa_def_node};
use vsfs_svfg::{StableKeys, Svfg, SvfgNodeId, SvfgNodeKind};

/// Audit waves before giving up on change-driven invalidation and
/// switching to the (exact but pessimistic) forward closure. Each wave
/// re-solves the dirty region, so the cap bounds worst-case re-solve
/// work at a small multiple of the final region's cost.
const MAX_AUDIT_WAVES: usize = 4;

/// Knobs for [`solve_program`]/[`resolve_edit`].
#[derive(Debug, Clone, Copy)]
pub struct IncrementalOptions {
    /// Which flow-sensitive solver serves this program. Everything after
    /// the Andersen stage dispatches on its [`SolverKind::caps`] row:
    /// staged solvers build memory SSA + SVFG and re-solve edits by
    /// SVFG-wave invalidation; cold-only solvers skip both and serve
    /// every edit by an exact cold re-solve.
    pub solver: SolverKind,
    /// Worklist discipline of the flow-sensitive stage (results are
    /// order-independent; only visit counts change).
    pub order: SolveOrder,
    /// Worker threads for the auxiliary Andersen stage.
    pub jobs: usize,
}

impl Default for IncrementalOptions {
    fn default() -> Self {
        // The server's historical engine is the staged SFS solver (the
        // seeded/incremental one); `SolverKind::default()` is the CLI's
        // batch default and intentionally differs.
        IncrementalOptions { solver: SolverKind::Sfs, order: SolveOrder::default(), jobs: 1 }
    }
}

/// Why a (re-)solve produced no [`ProgramState`].
#[derive(Debug, Clone)]
pub enum SolveError {
    /// The source failed to parse; one message per recovered diagnostic.
    Parse(Vec<String>),
    /// The parsed program failed IR verification.
    Verify(String),
    /// The auxiliary Andersen stage tripped its budget *on an edit*. An
    /// edit always has something better than any fallback — the previous
    /// state — so it is rejected and that state stays authoritative.
    /// From-scratch loads instead take the second rung of the
    /// degradation ladder ([`solve_program`] delivers a unification
    /// fallback), because there a coarse sound answer beats no answer.
    AuxBudget(DegradeReason),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Parse(errs) => write!(f, "parse failed: {}", errs.join("; ")),
            SolveError::Verify(e) => write!(f, "verification failed: {e}"),
            SolveError::AuxBudget(r) => {
                write!(f, "auxiliary analysis exceeded its budget ({r:?})")
            }
        }
    }
}

/// How a (re-)solve went, for logging and server responses.
#[derive(Debug, Clone, Copy)]
pub struct SolveReport {
    /// Solve-region units in the new parse: SVFG nodes for the staged
    /// solvers, instructions for the cold-only ones (which have no
    /// SVFG).
    pub total_nodes: usize,
    /// Nodes in the invalidated region (== `total_nodes` on a cold
    /// solve).
    pub dirty_nodes: usize,
    /// `true` if the solve was seeded from surviving warm state.
    pub incremental: bool,
    /// `true` if the solve was seeded from a deserialized snapshot
    /// ([`crate::warm::restore_program`]) rather than resident state.
    pub restored: bool,
    /// Points-to sets carried across the epoch boundary.
    pub carried_sets: usize,
    /// Audited re-solve waves the incremental engine ran (0 on a cold
    /// solve, 1 when the first audit already passed).
    pub waves: usize,
    /// Flow-sensitive solve wall-clock seconds.
    pub solve_seconds: f64,
    /// [`result_fingerprint`] of the delivered result.
    pub fingerprint: u64,
}

/// Warm state of a *completed* flow-sensitive solve: what the next edit
/// seeds from.
pub(crate) struct WarmState {
    /// Per-node transfer/edge signatures under `ProgramState::keys`.
    sigs: IndexVec<SvfgNodeId, u64>,
    /// Final `IN` table, object-sorted per node.
    pub(crate) ins: IndexVec<SvfgNodeId, Vec<(ObjId, PtsId)>>,
    /// Final `OUT` table of STORE nodes.
    pub(crate) outs: IndexVec<SvfgNodeId, Vec<(ObjId, PtsId)>>,
}

/// The staged (SVFG-based) middle of the pipeline — built only for
/// solvers whose [`SolverKind::caps`] row says `needs_svfg`.
pub(crate) struct Staged {
    /// Memory SSA over the program and auxiliary result.
    pub(crate) mssa: MemorySsa,
    /// The sparse value-flow graph.
    pub(crate) svfg: Svfg,
}

/// One program resident in the incremental analysis server: the whole
/// pipeline plus optional warm state.
pub struct ProgramState {
    /// The exact source text this state was built from.
    pub source: String,
    /// The parsed program.
    pub prog: Program,
    /// The auxiliary (Andersen) result.
    pub aux: AndersenResult,
    /// The staged pipeline, when `solver` requires it.
    pub(crate) staged: Option<Staged>,
    /// Stable cross-parse keys for `prog` (and the SVFG, when staged).
    pub keys: StableKeys,
    /// The solver this state was solved with; edits re-solve with it.
    pub solver: SolverKind,
    /// The delivered analysis (flow-sensitive, or the Andersen fallback
    /// when the governed solve degraded).
    pub analysis: GovernedAnalysis,
    /// [`result_fingerprint`] of `analysis.result`.
    pub fingerprint: u64,
    pub(crate) warm: Option<WarmState>,
}

impl ProgramState {
    /// `true` if the next [`resolve_edit`] can seed from this state.
    pub fn has_warm_state(&self) -> bool {
        self.warm.is_some()
    }

    /// The memory SSA, when the solver builds the staged pipeline.
    pub fn mssa(&self) -> Option<&MemorySsa> {
        self.staged.as_ref().map(|s| &s.mssa)
    }

    /// The sparse value-flow graph, when the solver builds it.
    pub fn svfg(&self) -> Option<&Svfg> {
        self.staged.as_ref().map(|s| &s.svfg)
    }
}

/// Parses, verifies, and solves `source` from scratch.
///
/// `aux_governor` bounds the auxiliary stage; `fs_governor` bounds the
/// flow-sensitive stage (trip ⇒ the state carries the sound Andersen
/// fallback and no warm state).
///
/// An auxiliary-stage trip takes the *second* rung of the degradation
/// ladder: a unification pre-analysis (ungoverned — it costs a small
/// fraction of the Andersen stage that already consumed the budget)
/// stands in as the delivered result, with `mode` set to
/// `"unification-fallback"` and `degraded_stage` to `"andersen"`. Only
/// [`resolve_edit`] still rejects on `AuxBudget`, because an edit has a
/// previous authoritative state to keep.
pub fn solve_program(
    source: &str,
    opts: IncrementalOptions,
    aux_governor: Option<&Governor>,
    fs_governor: Option<&Governor>,
) -> Result<(ProgramState, SolveReport), SolveError> {
    match build_front_ladder(source, opts, aux_governor)? {
        FrontBuild::Complete(front) => Ok(solve_front(source, *front, opts, fs_governor)),
        FrontBuild::AuxDegraded { prog, aux, reason } => {
            Ok(unify_rung_state(source, *prog, *aux, opts, reason))
        }
    }
}

/// Re-solves `source` — a new version of `prev`'s program — seeding from
/// `prev`'s warm state when possible. Falls back to a from-scratch solve
/// (still returning a fresh state) whenever the warm state is missing,
/// ambiguous, or fails to remap; the result is identical either way.
///
/// On `Err`, `prev` remains the authoritative state for the program.
pub fn resolve_edit(
    prev: &ProgramState,
    source: &str,
    opts: IncrementalOptions,
    aux_governor: Option<&Governor>,
    fs_governor: Option<&Governor>,
) -> Result<(ProgramState, SolveReport), SolveError> {
    let front = build_front(source, opts, aux_governor)?;
    // Capability dispatch: SVFG-wave invalidation only exists for the
    // staged solvers, and warm state never crosses a solver switch.
    // Anything else serves the edit by an exact cold re-solve.
    if !opts.solver.caps().incremental || prev.solver != opts.solver {
        return Ok(solve_front(source, front, opts, fs_governor));
    }
    Ok(match WaveCtx::prepare(prev, &front) {
        Some(ctx) => solve_incremental(prev, source, front, opts, fs_governor, ctx),
        None => solve_front(source, front, opts, fs_governor),
    })
}

/// Everything up to (but not including) the flow-sensitive stage.
pub(crate) struct Front {
    pub(crate) prog: Program,
    pub(crate) aux: AndersenResult,
    pub(crate) staged: Option<Staged>,
    pub(crate) keys: StableKeys,
    pub(crate) solver: SolverKind,
}

/// How the front of the pipeline ended: complete, or with the Andersen
/// stage cut short by its budget. The caller picks the policy — a load
/// takes the unification rung, an edit rejects.
pub(crate) enum FrontBuild {
    Complete(Box<Front>),
    /// The auxiliary stage tripped: the parsed program, the *partial*
    /// (unsound, never to be served) Andersen result, and the reason.
    AuxDegraded {
        prog: Box<Program>,
        aux: Box<AndersenResult>,
        reason: DegradeReason,
    },
}

/// Strict front build: any auxiliary-stage trip is an error. Used by
/// [`resolve_edit`], where the previous state beats any fallback.
pub(crate) fn build_front(
    source: &str,
    opts: IncrementalOptions,
    aux_governor: Option<&Governor>,
) -> Result<Front, SolveError> {
    match build_front_ladder(source, opts, aux_governor)? {
        FrontBuild::Complete(front) => Ok(*front),
        FrontBuild::AuxDegraded { reason, .. } => Err(SolveError::AuxBudget(reason)),
    }
}

pub(crate) fn build_front_ladder(
    source: &str,
    opts: IncrementalOptions,
    aux_governor: Option<&Governor>,
) -> Result<FrontBuild, SolveError> {
    let prog = vsfs_ir::parse_program_all(source)
        .map_err(|errs| SolveError::Parse(errs.iter().map(|e| e.to_string()).collect()))?;
    vsfs_ir::verify::verify(&prog).map_err(|e| SolveError::Verify(e.to_string()))?;
    let config = AndersenConfig::with_jobs(opts.jobs.max(1));
    let aux = match aux_governor {
        Some(gov) => {
            let outcome = analyze_governed(&prog, config, gov);
            if let Completion::Degraded(reason) = outcome.completion {
                return Ok(FrontBuild::AuxDegraded {
                    prog: Box::new(prog),
                    aux: Box::new(outcome.result),
                    reason,
                });
            }
            outcome.result
        }
        None => analyze_with_config(&prog, config),
    };
    let (staged, keys) = if opts.solver.caps().needs_svfg {
        let mssa = MemorySsa::build(&prog, &aux);
        let svfg = Svfg::build(&prog, &aux, &mssa);
        let keys = StableKeys::build(&prog, &mssa, &svfg);
        (Some(Staged { mssa, svfg }), keys)
    } else {
        // Cold-only solvers skip the staged pipeline entirely; the
        // program-level keys still back fingerprints and lookups.
        (None, StableKeys::build_program(&prog))
    };
    Ok(FrontBuild::Complete(Box::new(Front { prog, aux, staged, keys, solver: opts.solver })))
}

/// Packages the second rung of the degradation ladder: the Andersen
/// stage tripped, so an *ungoverned* unification run stands in as the
/// delivered analysis (sound: unify ⊇ andersen ⊇ flow-sensitive per
/// query). Running it ungoverned is deliberate — the governor already
/// tripped, a partially-unified result would be unsound, and the
/// unification fixpoint costs a small fraction of the Andersen stage.
///
/// The state keeps the partial Andersen result as `aux` only so the
/// struct stays total; it is tagged by `analysis.mode ==
/// "unification-fallback"` and must never back checker staging or
/// warm-state harvest (both are disabled for degraded states).
fn unify_rung_state(
    source: &str,
    prog: Program,
    aux: AndersenResult,
    opts: IncrementalOptions,
    reason: DegradeReason,
) -> (ProgramState, SolveReport) {
    let unify = analyze_unify(&prog);
    let analysis = GovernedAnalysis::unify_fallback(&prog, &unify, "andersen", reason);
    let keys = StableKeys::build_program(&prog);
    let total = prog.insts.len();
    let fingerprint = result_fingerprint(&prog, &keys, &analysis.result);
    let report = SolveReport {
        total_nodes: total,
        dirty_nodes: total,
        incremental: false,
        restored: false,
        carried_sets: 0,
        waves: 0,
        solve_seconds: unify.stats.seconds,
        fingerprint,
    };
    let state = ProgramState {
        source: source.to_string(),
        prog,
        aux,
        staged: None,
        keys,
        solver: opts.solver,
        analysis,
        fingerprint,
        warm: None,
    };
    (state, report)
}

/// Final bookkeeping of one solve, shared by [`deliver`].
pub(crate) struct Outcome {
    pub(crate) incremental: bool,
    pub(crate) restored: bool,
    pub(crate) dirty_nodes: usize,
    pub(crate) carried_sets: usize,
    pub(crate) waves: usize,
    /// Flow-sensitive seconds from discarded audit waves, added to the
    /// final wave's own timing in the report.
    pub(crate) prior_seconds: f64,
}

/// Runs the flow-sensitive stage cold over `front` and packages the
/// resulting state, dispatching on the front's solver.
pub(crate) fn solve_front(
    source: &str,
    front: Front,
    opts: IncrementalOptions,
    fs_governor: Option<&Governor>,
) -> (ProgramState, SolveReport) {
    if front.staged.is_none() {
        return solve_cold_only(source, front, opts, fs_governor);
    }
    let staged = front.staged.as_ref().expect("checked above");
    let total = staged.svfg.node_count();
    let (result, completion, harvest) = run_sfs_seeded(
        &front.prog,
        &front.aux,
        &staged.mssa,
        &staged.svfg,
        opts.order.into(),
        fs_governor,
        None,
    );
    let outcome = Outcome {
        incremental: false,
        restored: false,
        dirty_nodes: total,
        carried_sets: 0,
        waves: 0,
        prior_seconds: 0.0,
    };
    deliver(source, front, result, completion, harvest, outcome)
}

/// Runs a cold-only solver (no SVFG, no warm harvest) and packages the
/// state. These engines carry their own governed entry points, so a
/// budget trip still degrades to the sound Andersen fallback.
fn solve_cold_only(
    source: &str,
    front: Front,
    opts: IncrementalOptions,
    fs_governor: Option<&Governor>,
) -> (ProgramState, SolveReport) {
    let analysis = match (front.solver, fs_governor) {
        (SolverKind::Dense, None) => GovernedAnalysis::complete(run_dense(&front.prog, &front.aux)),
        (SolverKind::Dense, Some(gov)) => run_dense_governed(&front.prog, &front.aux, gov),
        (SolverKind::CfgFree, None) => {
            GovernedAnalysis::complete(run_cfgfree_ordered(&front.prog, &front.aux, opts.order))
        }
        (SolverKind::CfgFree, Some(gov)) => {
            run_cfgfree_governed_ordered(&front.prog, &front.aux, gov, opts.order)
        }
        (SolverKind::Unify, None) => GovernedAnalysis::complete(FlowSensitiveResult::from_unify(
            &front.prog,
            &analyze_unify(&front.prog),
        )),
        (SolverKind::Unify, Some(gov)) => {
            // A *partial* unification fixpoint is unsound, so a governed
            // unify run that trips cannot be served as-is. The complete
            // Andersen aux is already in hand and over-approximates every
            // flow-sensitive answer, so it stands in — one rung *up* in
            // precision from what was asked for, and still sound.
            let outcome = analyze_unify_governed(&front.prog, UnifyConfig::default(), gov);
            match outcome.completion {
                Completion::Complete => GovernedAnalysis::complete(
                    FlowSensitiveResult::from_unify(&front.prog, &outcome.result),
                ),
                Completion::Degraded(reason) => {
                    GovernedAnalysis::fallback(&front.prog, &front.aux, "solve", reason)
                }
            }
        }
        (SolverKind::Sfs | SolverKind::Vsfs, _) => {
            unreachable!("staged solvers always build a staged front")
        }
    };
    let Front { prog, aux, staged: _, keys, solver } = front;
    let total = prog.insts.len();
    let fingerprint = result_fingerprint(&prog, &keys, &analysis.result);
    let report = SolveReport {
        total_nodes: total,
        dirty_nodes: total,
        incremental: false,
        restored: false,
        carried_sets: 0,
        waves: 0,
        solve_seconds: analysis.result.stats.solve_seconds,
        fingerprint,
    };
    let state = ProgramState {
        source: source.to_string(),
        prog,
        aux,
        staged: None,
        keys,
        solver,
        analysis,
        fingerprint,
        warm: None,
    };
    (state, report)
}

/// Packages a finished flow-sensitive stage into a [`ProgramState`] and
/// [`SolveReport`]: harvests warm state on completion, or swaps in the
/// sound Andersen fallback (and drops all warm state — a degraded result
/// must never be cached as if it were a completed fixpoint) on a budget
/// trip.
pub(crate) fn deliver(
    source: &str,
    front: Front,
    result: FlowSensitiveResult,
    completion: Completion,
    harvest: Option<SfsHarvest>,
    outcome: Outcome,
) -> (ProgramState, SolveReport) {
    let Front { prog, aux, staged, keys, solver } = front;
    let staged = staged.expect("deliver is only reached by staged solvers");
    let total_nodes = staged.svfg.node_count();
    let (analysis, warm) = match completion {
        Completion::Complete => {
            let warm = harvest.filter(|_| keys.is_unambiguous()).map(|h| WarmState {
                sigs: node_signatures(&prog, &aux, &staged.mssa, &staged.svfg, &keys),
                ins: h.ins,
                outs: h.outs,
            });
            (GovernedAnalysis::complete(result), warm)
        }
        Completion::Degraded(reason) => {
            (GovernedAnalysis::fallback(&prog, &aux, "solve", reason), None)
        }
    };
    let fingerprint = result_fingerprint(&prog, &keys, &analysis.result);
    let report = SolveReport {
        total_nodes,
        dirty_nodes: outcome.dirty_nodes,
        incremental: outcome.incremental,
        restored: outcome.restored,
        carried_sets: outcome.carried_sets,
        waves: outcome.waves,
        solve_seconds: analysis.result.stats.solve_seconds + outcome.prior_seconds,
        fingerprint,
    };
    let state = ProgramState {
        source: source.to_string(),
        prog,
        aux,
        staged: Some(staged),
        keys,
        solver,
        analysis,
        fingerprint,
        warm,
    };
    (state, report)
}

/// The invalidation state of one audited-wave solve: the conservative
/// value-flow graph, its SCCs, and the (always SCC-closed) dirty set.
struct WaveCtx {
    graph: DiGraph<SvfgNodeId>,
    sccs: Sccs<SvfgNodeId>,
    dirty: IndexVec<SvfgNodeId, bool>,
    dirty_count: usize,
}

impl WaveCtx {
    /// Seeds the dirty set from unmapped / signature-changed nodes of
    /// the new SVFG (step 2 of the module docs), SCC-closed. `None` when
    /// only a cold solve is safe (no warm state or ambiguous keys).
    fn prepare(prev: &ProgramState, front: &Front) -> Option<WaveCtx> {
        let warm = prev.warm.as_ref()?;
        let staged = front.staged.as_ref()?;
        let svfg = &staged.svfg;
        if !prev.keys.is_unambiguous() || !front.keys.is_unambiguous() {
            return None;
        }
        let sigs = node_signatures(&front.prog, &front.aux, &staged.mssa, svfg, &front.keys);
        let graph = conservative_graph(&front.prog, svfg);
        let sccs = Sccs::compute(&graph);
        let mut ctx = WaveCtx {
            graph,
            sccs,
            dirty: IndexVec::from_elem_n(false, svfg.node_count()),
            dirty_count: 0,
        };
        for node in svfg.node_ids() {
            let seed = match prev.keys.node_of_key(front.keys.node_key[node]) {
                Some(old) => warm.sigs[old] != sigs[node],
                None => true,
            };
            if seed {
                ctx.mark_scc(node);
            }
        }

        // Objects of the old parse with no counterpart in the new one
        // make any carried state mentioning them unrepresentable in the
        // new epoch — and certainly stale. Dirty every node whose warm
        // state or defined-value set touches one, so the seed never has
        // to carry it (keeping `assemble_seed`'s bail-out a safety net,
        // not a hot path).
        let old_store = &prev.analysis.result.store;
        let mut dead: IndexVec<ObjId, bool> = IndexVec::from_elem_n(false, prev.prog.objects.len());
        let mut any_dead = false;
        for (o, _) in prev.prog.objects.iter_enumerated() {
            if front.keys.obj_of_key(prev.keys.obj_key[o]).is_none() {
                dead[o] = true;
                any_dead = true;
            }
        }
        if any_dead {
            let mut stale_memo: HashMap<PtsId, bool> = HashMap::new();
            let mut set_stale = |id: PtsId| -> bool {
                *stale_memo.entry(id).or_insert_with(|| old_store.iter_set(id).any(|o| dead[o]))
            };
            for node in svfg.node_ids() {
                let Some(old) = prev.keys.node_of_key(front.keys.node_key[node]) else {
                    continue;
                };
                let tainted = warm.ins[old]
                    .iter()
                    .chain(warm.outs[old].iter())
                    .any(|&(o, id)| dead[o] || set_stale(id));
                if tainted {
                    ctx.mark_scc(node);
                }
            }
            let def_node = value_def_nodes(&front.prog, svfg);
            for (v, _) in front.prog.values.iter_enumerated() {
                let Some(node) = def_node[v] else { continue };
                let Some(old_v) = prev.keys.value_of_key(front.keys.value_key[v]) else {
                    ctx.mark_scc(node);
                    continue;
                };
                if set_stale(prev.analysis.result.pt[old_v]) {
                    ctx.mark_scc(node);
                }
            }
        }
        Some(ctx)
    }

    /// Dirties `node` together with its whole strongly-connected
    /// component, so the clean/dirty frontier never cuts a cycle (a cut
    /// cycle could let a stale fact sustain itself across the boundary).
    fn mark_scc(&mut self, node: SvfgNodeId) {
        for &m in self.sccs.members(self.sccs.component(node)) {
            if !self.dirty[m] {
                self.dirty[m] = true;
                self.dirty_count += 1;
            }
        }
    }

    /// Extends the dirty set to its forward closure — the pre-audit
    /// invalidation rule, used as the exact fallback when auditing stops
    /// paying for itself.
    fn forward_close(&mut self) {
        let mut queue: Vec<SvfgNodeId> = self.graph.nodes().filter(|&v| self.dirty[v]).collect();
        while let Some(node) = queue.pop() {
            for &s in self.graph.successors(node) {
                if !self.dirty[s] {
                    self.dirty[s] = true;
                    self.dirty_count += 1;
                    queue.push(s);
                }
            }
        }
    }

    /// The clean mask (`!dirty`) for seeding.
    fn clean_mask(&self) -> IndexVec<SvfgNodeId, bool> {
        let mut clean = self.dirty.clone();
        for slot in clean.iter_mut() {
            *slot = !*slot;
        }
        clean
    }
}

/// The conservative value-flow graph dirtiness must respect: static
/// direct and indirect SVFG edges, plus the candidate dynamic edges
/// on-the-fly call-graph resolution could wire during a solve
/// (`call → FUNENTRY` / `FUNEXIT → return side` per deferred binding
/// pair, `call → return side` per call).
fn conservative_graph(prog: &Program, svfg: &Svfg) -> DiGraph<SvfgNodeId> {
    let mut g: DiGraph<SvfgNodeId> = DiGraph::with_nodes(svfg.node_count());
    for node in svfg.node_ids() {
        for &s in svfg.direct_succs(node) {
            g.add_edge(node, s);
        }
        for &(s, _) in svfg.indirect_succs(node) {
            g.add_edge(node, s);
        }
    }
    for (&(call, callee), _) in svfg.call_bindings() {
        let f = &prog.functions[callee];
        g.add_edge(svfg.inst_node(call), svfg.inst_node(f.entry_inst));
        g.add_edge(svfg.inst_node(f.exit_inst), svfg.callret_node(call));
    }
    for (inst, i) in prog.insts.iter_enumerated() {
        if matches!(i.kind, InstKind::Call { .. }) {
            g.add_edge(svfg.inst_node(inst), svfg.callret_node(inst));
        }
    }
    g
}

/// The audited-wave loop (step 3 of the module docs): re-solve the dirty
/// region seeded from the carried frontier, audit the clean side of the
/// boundary for values that actually changed, extend the region and
/// repeat. Falls back to the forward closure after [`MAX_AUDIT_WAVES`]
/// audits or once the region covers half the graph, and to a cold solve
/// whenever the seed fails to assemble.
fn solve_incremental(
    prev: &ProgramState,
    source: &str,
    front: Front,
    opts: IncrementalOptions,
    fs_governor: Option<&Governor>,
    mut ctx: WaveCtx,
) -> (ProgramState, SolveReport) {
    let warm = prev.warm.as_ref().expect("WaveCtx::prepare checked warm state");
    let total = front.staged.as_ref().expect("WaveCtx::prepare checked staged").svfg.node_count();
    let mut waves = 0;
    let mut prior_seconds = 0.0;
    let mut audited = true;
    loop {
        waves += 1;
        let Some((seed, carried_sets)) = assemble_seed(prev, warm, &front, ctx.clean_mask()) else {
            // Correspondence broke somewhere the cleanliness argument
            // says it cannot: a cold solve is always safe.
            return solve_front(source, front, opts, fs_governor);
        };
        let dirty_nodes = ctx.dirty_count;
        let staged = front.staged.as_ref().expect("WaveCtx::prepare checked staged");
        let (result, completion, harvest) = run_sfs_seeded(
            &front.prog,
            &front.aux,
            &staged.mssa,
            &staged.svfg,
            opts.order.into(),
            fs_governor,
            Some(seed),
        );
        let outcome = Outcome {
            incremental: true,
            restored: false,
            dirty_nodes,
            carried_sets,
            waves,
            prior_seconds,
        };
        if !matches!(completion, Completion::Complete) {
            // Budget trip: deliver handles the fallback; auditing a
            // partial fixpoint would be meaningless.
            return deliver(source, front, result, completion, harvest, outcome);
        }
        if audited {
            let h = harvest.as_ref().expect("complete solves always harvest");
            let newly = audit_frontier(prev, warm, &front, &ctx.dirty, &result, h);
            if !newly.is_empty() {
                prior_seconds += result.stats.solve_seconds;
                for node in newly {
                    ctx.mark_scc(node);
                }
                if waves >= MAX_AUDIT_WAVES || ctx.dirty_count * 2 > total {
                    // Auditing stopped paying for itself: extend to the
                    // full forward closure, after which no clean node has
                    // a dirty predecessor and the next wave needs no
                    // audit.
                    ctx.forward_close();
                    audited = false;
                }
                continue;
            }
        }
        return deliver(source, front, result, completion, harvest, outcome);
    }
}

/// Compares the recomputed solution of the dirty region against the
/// warm values along every dirty→clean boundary, by stable key. Returns
/// the clean nodes that received a genuinely changed input and must be
/// dirtied (the caller SCC-closes them). Empty ⇒ the combined state is
/// the exact global fixpoint.
///
/// Three kinds of boundary contribution are audited:
/// * **Top-level values** published by a dirty node — its defs, its call
///   arguments (they flow to `FUNENTRY` parameters), and its `FUNEXIT`
///   return operand. A change flags every direct successor, plus the
///   return side and activated callee entries of a call.
/// * **Per-object state** on each indirect edge from a dirty node to a
///   clean one (`out_val` of the edge's object).
/// * **Call activations**: pairs added or removed relative to the warm
///   call graph flag the callee entry and the return side; for surviving
///   pairs of a dirty call, the binding's `ins`/`outs` objects and the
///   callee's return operand are compared like any other edge state.
///
/// Structural edge changes need no audit of their own: signatures embed
/// predecessor key sets, so a node that gained or lost an edge is
/// already a seed.
fn audit_frontier(
    prev: &ProgramState,
    warm: &WarmState,
    front: &Front,
    dirty: &IndexVec<SvfgNodeId, bool>,
    result: &FlowSensitiveResult,
    harvest: &SfsHarvest,
) -> Vec<SvfgNodeId> {
    let svfg = &front.staged.as_ref().expect("audited waves imply a staged front").svfg;
    let prev_svfg = prev.svfg().expect("warm state implies a staged front");
    let old_result = &prev.analysis.result;
    let new_store = &result.store;
    let old_store = &old_result.store;

    // Keyed set equality across the two stores' object id spaces.
    let pts_equal = |new_id: Option<PtsId>, old_id: Option<PtsId>| -> bool {
        let nlen = new_id.map_or(0, |i| new_store.set_len(i));
        let olen = old_id.map_or(0, |i| old_store.set_len(i));
        if nlen != olen {
            return false;
        }
        if nlen == 0 {
            return true;
        }
        let old_id = old_id.expect("olen > 0");
        new_store.iter_set(new_id.expect("nlen > 0")).all(|o| {
            prev.keys
                .obj_of_key(front.keys.obj_key[o])
                .is_some_and(|oo| old_store.contains(old_id, oo))
        })
    };
    let value_changed = |v: ValueId| -> bool {
        match prev.keys.value_of_key(front.keys.value_key[v]) {
            Some(old_v) => !pts_equal(Some(result.pt[v]), Some(old_result.pt[old_v])),
            // A value with no old counterpart published nothing before;
            // its set changed iff it is now non-empty.
            None => !new_store.set_is_empty(result.pt[v]),
        }
    };
    // `out_val` of a node for one object, on each side: OUT for stores,
    // IN otherwise; absent table entry ≡ the empty set.
    let new_out = |node: SvfgNodeId, o: ObjId| -> Option<PtsId> {
        let is_store = matches!(svfg.kind(node), SvfgNodeKind::Inst(i)
            if front.prog.insts[i].kind.is_store());
        let table = if is_store { &harvest.outs[node] } else { &harvest.ins[node] };
        table.binary_search_by_key(&o, |e| e.0).ok().map(|i| table[i].1)
    };
    let old_out = |node: SvfgNodeId, o: ObjId| -> Option<PtsId> {
        let is_store = matches!(prev_svfg.kind(node), SvfgNodeKind::Inst(i)
            if prev.prog.insts[i].kind.is_store());
        let table = if is_store { &warm.outs[node] } else { &warm.ins[node] };
        table.binary_search_by_key(&o, |e| e.0).ok().map(|i| table[i].1)
    };
    let out_changed = |node: SvfgNodeId, o: ObjId| -> bool {
        let old_id = prev
            .keys
            .node_of_key(front.keys.node_key[node])
            .zip(prev.keys.obj_of_key(front.keys.obj_key[o]))
            .and_then(|(n, oo)| old_out(n, oo));
        !pts_equal(new_out(node, o), old_id)
    };

    let mut flagged: IndexVec<SvfgNodeId, bool> = IndexVec::from_elem_n(false, svfg.node_count());
    let mut newly: Vec<SvfgNodeId> = Vec::new();
    let flag = |flagged: &mut IndexVec<SvfgNodeId, bool>,
                newly: &mut Vec<SvfgNodeId>,
                node: SvfgNodeId| {
        if !dirty[node] && !flagged[node] {
            flagged[node] = true;
            newly.push(node);
        }
    };

    // Values published per node (defs live at their defining node; call
    // arguments and return operands are published by the call/exit).
    let def_node = value_def_nodes(&front.prog, svfg);
    let mut published: IndexVec<SvfgNodeId, Vec<ValueId>> =
        IndexVec::from_elem_n(Vec::new(), svfg.node_count());
    for (v, d) in def_node.iter_enumerated() {
        if let Some(d) = *d {
            published[d].push(v);
        }
    }
    // New activations grouped by call site.
    let mut acts: HashMap<InstId, Vec<FuncId>> = HashMap::new();
    for &(call, f) in &result.callgraph_edges {
        acts.entry(call).or_default().push(f);
    }

    for node in svfg.node_ids() {
        if !dirty[node] {
            continue;
        }
        let mut call_inst = None;
        let mut pubs = std::mem::take(&mut published[node]);
        if let SvfgNodeKind::Inst(inst) = svfg.kind(node) {
            match &front.prog.insts[inst].kind {
                InstKind::Call { args, .. } => {
                    pubs.extend(args.iter().copied());
                    call_inst = Some(inst);
                }
                InstKind::FunExit { ret, .. } => pubs.extend(ret.iter().copied()),
                _ => {}
            }
        }
        if pubs.iter().any(|&v| value_changed(v)) {
            for &s in svfg.direct_succs(node) {
                flag(&mut flagged, &mut newly, s);
            }
            if let Some(call) = call_inst {
                // Dynamic consumers of a call's top-level values: its
                // return side and the entries of every activated callee.
                flag(&mut flagged, &mut newly, svfg.callret_node(call));
                for f in acts.get(&call).into_iter().flatten() {
                    let entry = svfg.inst_node(front.prog.functions[*f].entry_inst);
                    flag(&mut flagged, &mut newly, entry);
                }
            }
        }
        for (s, o) in svfg.indirect_succs_expanded(node) {
            if !dirty[s] && !flagged[s] && out_changed(node, o) {
                flag(&mut flagged, &mut newly, s);
            }
        }
    }

    // Activation audit. Old activations keyed by (call-site key, callee
    // name hash); functions of the new parse looked up by name hash.
    let mut old_acts: HashMap<u64, HashSet<u64>> = HashMap::new();
    for &(call, f) in &old_result.callgraph_edges {
        old_acts
            .entry(prev.keys.inst_key[call])
            .or_default()
            .insert(fnv1a(prev.prog.functions[f].name.as_bytes()));
    }
    let name_to_func: HashMap<u64, FuncId> = front
        .prog
        .functions
        .iter_enumerated()
        .map(|(f, func)| (fnv1a(func.name.as_bytes()), f))
        .collect();

    for (call, i) in front.prog.insts.iter_enumerated() {
        if !matches!(i.kind, InstKind::Call { .. }) {
            continue;
        }
        let call_node = svfg.inst_node(call);
        if !dirty[call_node] {
            // A clean call keeps its carried activations and published
            // values verbatim; nothing to audit.
            continue;
        }
        let ret_node = svfg.callret_node(call);
        let old_set = old_acts.get(&front.keys.inst_key[call]);
        let mut new_names: HashSet<u64> = HashSet::new();
        for &callee in acts.get(&call).map_or(&[] as &[FuncId], Vec::as_slice) {
            let func = &front.prog.functions[callee];
            let name_hash = fnv1a(func.name.as_bytes());
            new_names.insert(name_hash);
            let entry = svfg.inst_node(func.entry_inst);
            let exit = svfg.inst_node(func.exit_inst);
            if !old_set.is_some_and(|s| s.contains(&name_hash)) {
                // Newly activated pair: both endpoints see new flows.
                flag(&mut flagged, &mut newly, entry);
                flag(&mut flagged, &mut newly, ret_node);
                continue;
            }
            // Surviving pair: audit the object state its dynamic edges
            // carry, like any other boundary edge.
            if let Some(binding) = svfg.call_binding(call, callee) {
                if binding.ins.iter().any(|&o| out_changed(call_node, o)) {
                    flag(&mut flagged, &mut newly, entry);
                }
                if dirty[exit] && binding.outs.iter().any(|&o| out_changed(exit, o)) {
                    flag(&mut flagged, &mut newly, ret_node);
                }
            }
            if dirty[exit] {
                if let InstKind::FunExit { ret: Some(rv), .. } =
                    front.prog.insts[func.exit_inst].kind
                {
                    if value_changed(rv) {
                        flag(&mut flagged, &mut newly, ret_node);
                    }
                }
            }
        }
        // Removed pairs: the stale flows they fed must be rebuilt at
        // both endpoints (when the callee still exists).
        if let Some(olds) = old_set {
            for &h in olds {
                if !new_names.contains(&h) {
                    if let Some(&f) = name_to_func.get(&h) {
                        let entry = svfg.inst_node(front.prog.functions[f].entry_inst);
                        flag(&mut flagged, &mut newly, entry);
                    }
                    flag(&mut flagged, &mut newly, ret_node);
                }
            }
        }
    }

    newly
}

/// Carries the surviving fixpoint state into the new parse's id spaces
/// (step 4 of the module docs). Returns `None` — forcing a cold solve —
/// if any remap fails or drops an element, which the cleanliness
/// argument says cannot happen for state of clean nodes; the bail-out
/// makes correctness independent of that argument.
fn assemble_seed(
    prev: &ProgramState,
    warm: &WarmState,
    front: &Front,
    clean: IndexVec<SvfgNodeId, bool>,
) -> Option<(SfsSeed, usize)> {
    let svfg = &front.staged.as_ref()?.svfg;
    let prev_svfg = prev.svfg()?;
    let old_store = &prev.analysis.result.store;
    let mut store = old_store.next_epoch();
    let mut carry = PtsCarry::new();
    let map_obj = |o: ObjId| -> Option<ObjId> { front.keys.obj_of_key(prev.keys.obj_key[o]) };

    // Top-level sets of values whose defining node is clean.
    let def_node = value_def_nodes(&front.prog, svfg);
    let mut pt: Vec<(ValueId, PtsId)> = Vec::new();
    for (v, _) in front.prog.values.iter_enumerated() {
        let Some(node) = def_node[v] else { continue };
        if !clean[node] {
            continue;
        }
        let Some(old_v) = prev.keys.value_of_key(front.keys.value_key[v]) else {
            return None; // clean def but unmapped value: correspondence is broken
        };
        let id = carry.carry(old_store, &mut store, prev.analysis.result.pt[old_v], map_obj);
        pt.push((v, id));
    }

    // IN/OUT tables of clean nodes.
    let mut ins: Vec<(SvfgNodeId, Vec<(ObjId, PtsId)>)> = Vec::new();
    let mut outs: Vec<(SvfgNodeId, Vec<(ObjId, PtsId)>)> = Vec::new();
    for node in svfg.node_ids() {
        if !clean[node] {
            continue;
        }
        let old = prev.keys.node_of_key(front.keys.node_key[node])?;
        for (table, old_table) in [(&mut ins, &warm.ins[old]), (&mut outs, &warm.outs[old])] {
            if old_table.is_empty() {
                continue;
            }
            let mut entries: Vec<(ObjId, PtsId)> = Vec::with_capacity(old_table.len());
            for &(o, id) in old_table.iter() {
                // The keyed objects of a clean node's state all survive
                // (they appear in its unchanged µ/χ/φ signature).
                let new_o = map_obj(o)?;
                entries.push((new_o, carry.carry(old_store, &mut store, id, map_obj)));
            }
            entries.sort_unstable_by_key(|&(o, _)| o);
            table.push((node, entries));
        }
    }

    // Call-graph activations whose call node is clean.
    let mut activations: Vec<(InstId, FuncId)> = Vec::new();
    for &(call, callee) in &prev.analysis.result.callgraph_edges {
        let old_node = prev_svfg.inst_node(call);
        let Some(node) = front.keys.node_of_key(prev.keys.node_key[old_node]) else {
            continue; // call site removed; its region is dirty anyway
        };
        if !clean[node] {
            continue;
        }
        let SvfgNodeKind::Inst(new_call) = svfg.kind(node) else { return None };
        let name = &prev.prog.functions[callee].name;
        let new_callee = front.prog.function_by_name(name)?;
        activations.push((new_call, new_callee));
    }

    if carry.stats.dropped_elems > 0 {
        return None;
    }
    let carried_sets = carry.stats.carried_sets;
    Some((SfsSeed { store, pt, ins, outs, activations, clean }, carried_sets))
}

/// The SVFG node that defines each value's final top-level set: the
/// return side for call results, `FUNENTRY` for parameters, the
/// instruction node otherwise. `None` for globals (re-seeded by the
/// solver) and never-defined values.
pub(crate) fn value_def_nodes(
    prog: &Program,
    svfg: &Svfg,
) -> IndexVec<ValueId, Option<SvfgNodeId>> {
    let mut def: IndexVec<ValueId, Option<SvfgNodeId>> =
        IndexVec::from_elem_n(None, prog.values.len());
    for (inst, i) in prog.insts.iter_enumerated() {
        if let Some(d) = i.kind.def() {
            def[d] = Some(match i.kind {
                InstKind::Call { .. } => svfg.callret_node(inst),
                _ => svfg.inst_node(inst),
            });
        }
    }
    for (_, func) in prog.functions.iter_enumerated() {
        for &p in &func.params {
            def[p] = Some(svfg.inst_node(func.entry_inst));
        }
    }
    for &(g, _) in &prog.globals {
        def[g] = None;
    }
    def
}

/// Hashes every node's transfer behaviour and incoming-edge structure
/// into one signature (step 2 of the module docs). Two corresponding
/// nodes with equal signatures have identical local fixpoint equations,
/// so a clean region (no dirty node reaches it) keeps its previous
/// solution.
pub fn node_signatures(
    prog: &Program,
    aux: &AndersenResult,
    mssa: &MemorySsa,
    svfg: &Svfg,
    keys: &StableKeys,
) -> IndexVec<SvfgNodeId, u64> {
    let singletons = vsfs_andersen::compute_singletons(prog, &aux.callgraph);
    let fname = |f: FuncId| fnv1a(prog.functions[f].name.as_bytes());
    let vk = |v: ValueId| keys.value_key[v];
    let ok = |o: ObjId| keys.obj_key[o];

    // Direct predecessors, as sorted key lists.
    let mut direct_preds: IndexVec<SvfgNodeId, Vec<u64>> =
        IndexVec::from_elem_n(Vec::new(), svfg.node_count());
    for node in svfg.node_ids() {
        for &s in svfg.direct_succs(node) {
            direct_preds[s].push(keys.node_key[node]);
        }
    }

    // Auxiliary call-graph callers per function, as sorted inst keys —
    // part of every FUNENTRY signature so caller-set changes (new or
    // removed potential call sites) dirty the entry.
    let mut aux_callers: HashMap<FuncId, Vec<u64>> = HashMap::new();
    for (call, f) in aux.callgraph.edges() {
        aux_callers.entry(f).or_default().push(keys.inst_key[call]);
    }
    for callers in aux_callers.values_mut() {
        callers.sort_unstable();
    }

    let mix_sorted = |h: u64, mut items: Vec<u64>| -> u64 {
        items.sort_unstable();
        let mut h = mix(h, items.len() as u64);
        for item in items {
            h = mix(h, item);
        }
        h
    };
    let binding_hash = |objs: &[ObjId]| -> u64 {
        let mut h = fnv1a(b"bind");
        let mut ks: Vec<u64> = objs.iter().map(|&o| ok(o)).collect();
        ks.sort_unstable();
        for k in ks {
            h = mix(h, k);
        }
        h
    };

    let inst_content = |inst: InstId| -> u64 {
        let kind = &prog.insts[inst].kind;
        let mut h = fnv1a(kind.mnemonic().as_bytes());
        match kind {
            InstKind::Alloc { dst, obj } => {
                h = mix(mix(h, vk(*dst)), ok(*obj));
            }
            InstKind::Phi { dst, srcs } => {
                h = mix(h, vk(*dst));
                for &s in srcs {
                    h = mix(h, vk(s));
                }
            }
            InstKind::Copy { dst, src } => {
                h = mix(mix(h, vk(*dst)), vk(*src));
            }
            InstKind::Field { dst, base, offset } => {
                h = mix(mix(mix(h, vk(*dst)), vk(*base)), *offset as u64);
            }
            InstKind::Load { dst, addr } => {
                h = mix(mix(h, vk(*dst)), vk(*addr));
            }
            InstKind::Store { addr, val } => {
                h = mix(mix(h, vk(*addr)), vk(*val));
            }
            InstKind::Free { ptr } => {
                h = mix(h, vk(*ptr));
            }
            InstKind::Call { dst, callee, args } => {
                h = match dst {
                    Some(d) => mix(mix(h, 1), vk(*d)),
                    None => mix(h, 0),
                };
                h = match callee {
                    Callee::Direct(f) => mix(mix(h, 1), fname(*f)),
                    Callee::Indirect(fp) => mix(mix(h, 2), vk(*fp)),
                };
                for &a in args {
                    h = mix(h, vk(a));
                }
            }
            InstKind::FunEntry { func } => {
                h = mix(h, fname(*func));
                for &p in &prog.functions[*func].params {
                    h = mix(h, vk(p));
                }
            }
            InstKind::FunExit { func, ret } => {
                h = mix(h, fname(*func));
                h = match ret {
                    Some(r) => mix(mix(h, 1), vk(*r)),
                    None => mix(h, 0),
                };
            }
        }
        h
    };

    let mut sigs: IndexVec<SvfgNodeId, u64> = IndexVec::new();
    for node in svfg.node_ids() {
        let mut h = match svfg.kind(node) {
            SvfgNodeKind::Inst(inst) => {
                let mut h = mix(fnv1a(b"sig-inst"), inst_content(inst));
                // µs read object state here (for calls: the relay into
                // callees), keyed by object and reaching definition.
                let mus: Vec<u64> = mssa
                    .mus(inst)
                    .iter()
                    .map(|mu| mix(ok(mu.obj), keys.node_key[mssa_def_node(svfg, mu.def)]))
                    .collect();
                h = mix_sorted(h, mus);
                let kind = &prog.insts[inst].kind;
                if !matches!(kind, InstKind::Call { .. }) {
                    // χs of non-call instructions (stores, frees) attach
                    // here; for stores include the static strong-update
                    // decision, which depends on the auxiliary result.
                    //
                    // A FUNENTRY χ on an object *private* to the function
                    // (allocated here and never escaping) is excluded:
                    // its entry state is constantly absent — no caller
                    // binding can carry a non-escaping object, and the
                    // entry transfer is a pure relay — so gaining or
                    // losing such a χ (any edit that allocates locally)
                    // does not change the entry's fixpoint equation. The
                    // structural edges the χ induces are covered by its
                    // consumers' signatures, and those consumers live in
                    // the edited function.
                    let entry_private = |o: ObjId| -> bool {
                        let InstKind::FunEntry { func } = kind else { return false };
                        if mssa.modref.is_escaped(o) {
                            return false;
                        }
                        let mut o = o;
                        loop {
                            match prog.objects[o].kind {
                                ObjKind::Stack(f) | ObjKind::Heap(f) => return f == *func,
                                ObjKind::Field { base, .. } => o = base,
                                _ => return false,
                            }
                        }
                    };
                    let chis: Vec<u64> = mssa
                        .chis(inst)
                        .iter()
                        .filter(|chi| !entry_private(chi.obj))
                        .map(|chi| {
                            let prev = match chi.prev {
                                Some(d) => keys.node_key[mssa_def_node(svfg, d)],
                                None => u64::MAX,
                            };
                            let mut c = mix(ok(chi.obj), prev);
                            if let InstKind::Store { addr, .. } = kind {
                                let su = singletons.contains(chi.obj)
                                    && aux.value_pts(*addr).as_singleton() == Some(chi.obj);
                                c = mix(c, su as u64);
                            }
                            c
                        })
                        .collect();
                    h = mix_sorted(h, chis);
                }
                if let InstKind::Call { .. } = kind {
                    // Caller-side objects that could flow into each
                    // possible callee (deferred indirect-call bindings).
                    let binds: Vec<u64> = svfg
                        .call_bindings()
                        .filter(|((c, _), _)| *c == inst)
                        .map(|((_, f), b)| mix(fname(*f), binding_hash(&b.ins)))
                        .collect();
                    h = mix_sorted(h, binds);
                }
                if let InstKind::FunEntry { func } = kind {
                    // The auxiliary caller set: a new or removed
                    // potential call site must dirty the entry even when
                    // the entry's own instruction text is unchanged.
                    let callers = aux_callers.get(func).cloned().unwrap_or_default();
                    h = mix(h, callers.len() as u64);
                    for c in callers {
                        h = mix(h, c);
                    }
                }
                h
            }
            SvfgNodeKind::CallRet(inst) => {
                let mut h = mix(fnv1a(b"sig-ret"), inst_content(inst));
                let chis: Vec<u64> = mssa
                    .chis(inst)
                    .iter()
                    .map(|chi| {
                        let prev = match chi.prev {
                            Some(d) => keys.node_key[mssa_def_node(svfg, d)],
                            None => u64::MAX,
                        };
                        mix(ok(chi.obj), prev)
                    })
                    .collect();
                h = mix_sorted(h, chis);
                // Callee-side objects that could flow back from each
                // possible callee.
                let binds: Vec<u64> = svfg
                    .call_bindings()
                    .filter(|((c, _), _)| *c == inst)
                    .map(|((_, f), b)| mix(fname(*f), binding_hash(&b.outs)))
                    .collect();
                h = mix_sorted(h, binds);
                h
            }
            SvfgNodeKind::MemPhi(p) => {
                let phi = &mssa.memphis()[p];
                let mut h = mix(fnv1a(b"sig-phi"), ok(phi.obj));
                h = mix(h, phi.incoming.len() as u64);
                for &d in &phi.incoming {
                    h = mix(h, keys.node_key[mssa_def_node(svfg, d)]);
                }
                h
            }
        };
        // Incoming edges: direct predecessors and object-labelled
        // indirect predecessors.
        h = mix_sorted(h, direct_preds[node].clone());
        let ind: Vec<u64> =
            svfg.indirect_preds_expanded(node).map(|(p, o)| mix(keys.node_key[p], ok(o))).collect();
        h = mix_sorted(h, ind);
        sigs.push(h);
    }
    sigs
}

/// An ID-independent fingerprint of a delivered result: the points-to
/// relation keyed by stable value/object keys plus the resolved call
/// graph keyed by call-site keys and callee names. Two parses of the
/// same text — or an incremental and a from-scratch solve of the same
/// edit — produce the same fingerprint iff they computed the same
/// result.
pub fn result_fingerprint(prog: &Program, keys: &StableKeys, result: &FlowSensitiveResult) -> u64 {
    let mut items: Vec<(u64, Vec<u64>)> = Vec::with_capacity(prog.values.len());
    for (v, _) in prog.values.iter_enumerated() {
        let mut objs: Vec<u64> = result.value_pts(v).iter().map(|o| keys.obj_key[o]).collect();
        objs.sort_unstable();
        items.push((keys.value_key[v], objs));
    }
    items.sort_unstable();
    let mut h = fnv1a(b"fingerprint");
    for (vkey, objs) in items {
        h = mix(h, vkey);
        h = mix(h, objs.len() as u64);
        for o in objs {
            h = mix(h, o);
        }
    }
    let mut edges: Vec<(u64, u64)> = result
        .callgraph_edges
        .iter()
        .map(|&(c, f)| (keys.inst_key[c], fnv1a(prog.functions[f].name.as_bytes())))
        .collect();
    edges.sort_unstable();
    h = mix(h, edges.len() as u64);
    for (c, f) in edges {
        h = mix(h, mix(c, f));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::precision_diff;
    use crate::sfs::run_sfs_ordered;

    const BASE: &str = r#"
global @g

func @make() {
entry:
  %h = alloc heap H
  ret %h
}

func @use(%p) {
entry:
  %box = alloc stack BOX
  store %p, %box
  %v = load %box
  ret %v
}

func @main() {
entry:
  %a = call @make()
  store %a, @g
  %r = call @use(%a)
  ret
}
"#;

    fn cold(src: &str) -> (ProgramState, SolveReport) {
        solve_program(src, IncrementalOptions::default(), None, None).unwrap()
    }

    #[test]
    fn noop_edit_invalidates_nothing_and_matches() {
        let (state, r0) = cold(BASE);
        assert!(state.has_warm_state());
        let (next, r1) =
            resolve_edit(&state, BASE, IncrementalOptions::default(), None, None).unwrap();
        assert!(r1.incremental);
        assert_eq!(r1.dirty_nodes, 0, "identical text must invalidate nothing");
        assert_eq!(r1.fingerprint, r0.fingerprint);
        assert_eq!(precision_diff(&next.prog, &state.analysis.result, &next.analysis.result), None);
    }

    #[test]
    fn localized_edit_dirties_a_strict_subset_and_matches_cold() {
        let (state, _) = cold(BASE);
        let edited = BASE.replace("%h = alloc heap H", "%h = alloc heap H2");
        let (next, report) =
            resolve_edit(&state, &edited, IncrementalOptions::default(), None, None).unwrap();
        assert!(report.incremental);
        assert!(report.dirty_nodes > 0);
        assert!(
            report.dirty_nodes < report.total_nodes,
            "an edit to one function must not invalidate every node \
             ({}/{} dirty)",
            report.dirty_nodes,
            report.total_nodes
        );
        // Bit-identical to a from-scratch solve of the same text.
        let reference = run_sfs_ordered(
            &next.prog,
            &next.aux,
            next.mssa().expect("staged solver"),
            next.svfg().expect("staged solver"),
            SolveOrder::default(),
        );
        assert_eq!(precision_diff(&next.prog, &next.analysis.result, &reference), None);
        assert_eq!(next.fingerprint, result_fingerprint(&next.prog, &next.keys, &reference));
    }

    #[test]
    fn cold_only_solvers_serve_edits_by_exact_cold_resolves() {
        let opts = IncrementalOptions { solver: SolverKind::CfgFree, ..Default::default() };
        let (state, r0) = solve_program(BASE, opts, None, None).unwrap();
        assert!(!state.has_warm_state());
        assert!(state.svfg().is_none() && state.mssa().is_none());
        let (sfs_state, sfs_r0) = cold(BASE);
        assert_eq!(r0.fingerprint, sfs_r0.fingerprint, "solvers agree on the base text");

        let edited = BASE.replace("%h = alloc heap H", "%h = alloc heap H2");
        let (next, r1) = resolve_edit(&state, &edited, opts, None, None).unwrap();
        assert!(!r1.incremental, "no SVFG, no wave invalidation");
        assert_eq!(r1.dirty_nodes, r1.total_nodes, "the whole program re-solves");
        assert_eq!(next.solver, SolverKind::CfgFree);
        let (sfs_next, sfs_r1) =
            resolve_edit(&sfs_state, &edited, IncrementalOptions::default(), None, None).unwrap();
        assert_eq!(r1.fingerprint, sfs_r1.fingerprint, "solvers agree on the edit");
        assert_eq!(
            precision_diff(&next.prog, &next.analysis.result, &sfs_next.analysis.result),
            None
        );
    }

    #[test]
    fn switching_solvers_between_edits_resolves_cold() {
        let (state, _) = cold(BASE);
        assert!(state.has_warm_state());
        let opts = IncrementalOptions { solver: SolverKind::Vsfs, ..Default::default() };
        let (next, report) = resolve_edit(&state, BASE, opts, None, None).unwrap();
        assert!(!report.incremental, "warm state never crosses a solver switch");
        assert_eq!(next.solver, SolverKind::Vsfs);
        assert_eq!(next.fingerprint, state.fingerprint);
    }

    #[test]
    fn parse_errors_are_reported_not_panicked() {
        let err = solve_program("func @main( {", IncrementalOptions::default(), None, None)
            .err()
            .expect("must fail");
        assert!(matches!(err, SolveError::Parse(_)));
    }
}

//! Region-level operation memoization for the staged fixpoints (the
//! second dedup level of the multi-level deduplication engine; the first
//! is the chunked [`vsfs_adt::PtsStore`]).
//!
//! A worklist pop is pure overhead when the node's transfer function is
//! re-run over inputs that cannot have changed since its last run. The
//! staged solvers generate such pops by design: `TopLevel::activate`
//! re-queues a callee's entry unconditionally, and a statically-strong
//! store is re-queued whenever the version/`IN` state it *kills* grows —
//! state its transfer never reads.
//!
//! [`RegionMemo`] recognises these pops with a fingerprint of the node's
//! input frontier, kept at two granularities:
//!
//! * **Region stamps.** Nodes are grouped into the SCCs of the static
//!   solve-dependence graph (the same graph the topological worklist
//!   ranks come from; see `crate::schedule::svfg_schedule`). Each
//!   component carries a monotone version, bumped when new input crosses
//!   the region's *frontier* — an effective delivery whose producer sits
//!   in a different component. Deliveries *within* a component (a cycle
//!   iterating toward its local fixpoint) bump only the receiving node's
//!   own stamp: region-mates that don't read the shipped state keep
//!   their stamps current, which is what lets a converged region stay
//!   skippable while one member churns. Deliveries a receiver provably
//!   ignores (the consumed state of a statically-strong update, see
//!   [`crate::toplevel::TopLevel::is_strong_update`]) bump nothing.
//! * **Top-level operands.** The hash-consed [`PtsId`]s of the values the
//!   node's instruction reads, compared exactly — equal ids mean equal
//!   sets, so no hashing (and no collision unsoundness) is involved.
//!
//! A pop whose region and node stamps are both unchanged since the node
//! last ran is a *fingerprint hit*
//! ([`crate::SolveStats::scc_fingerprint_hits`]); if its operand ids
//! also match, the transfer is skipped outright
//! ([`crate::SolveStats::scc_solves_skipped`]).
//!
//! # Why skipping preserves the least fixpoint
//!
//! The solvers are monotone and push-based: node state only grows, and
//! every growth site re-queues exactly the nodes whose transfer reads
//! the grown state — and tells the memo, naming the receiver. The
//! stamps are recorded *before* the transfer runs, so a transfer that
//! feeds itself (a self-loop) bumps its node stamp past its own
//! recording and the node re-runs. A skip therefore only happens when
//! every input the transfer reads — delivered state and top-level
//! operands alike — is bit-identical to the run that produced the
//! node's current outputs, and re-running would recompute exactly those
//! outputs. The fixpoint reached with the memo on is the same unique
//! least solution, with fewer no-op transfers.

use vsfs_adt::{IndexVec, PtsId};
use vsfs_ir::{Callee, InstKind, Program, ValueId};
use vsfs_svfg::{Svfg, SvfgNodeId, SvfgNodeKind};

use crate::result::SolveStats;
use crate::toplevel::EMPTY;

/// Never-ran sentinel: the first pop of a node always processes.
const NEVER: u64 = u64::MAX;

/// The region-level memo shared by the SFS and VSFS node loops.
pub(crate) struct RegionMemo {
    enabled: bool,
    /// Dense SCC component id per node (Tarjan ids — *not* condensation
    /// ranks, which merge independent components at equal depth).
    comp: Vec<u32>,
    /// Monotone frontier version per component: deliveries from outside
    /// the region.
    comp_ver: Vec<u64>,
    /// Monotone intra-region input version per node.
    node_ver: Vec<u64>,
    /// `comp_ver` observed when the node last processed; [`NEVER`] until
    /// the first run.
    last_comp: Vec<u64>,
    /// `node_ver` observed when the node last processed.
    last_node: Vec<u64>,
    /// Per-node `(start, len)` span into `operand_vals`.
    operand_spans: Vec<(u32, u32)>,
    /// The top-level values each node's transfer reads, concatenated.
    operand_vals: Vec<ValueId>,
    /// Operand set ids observed at the node's last run (parallel to
    /// `operand_vals`).
    last_operand_ids: Vec<PtsId>,
}

impl RegionMemo {
    /// Builds the memo for `svfg` from precomputed SCC component ids
    /// (see `crate::schedule::svfg_schedule`). With `enabled` false
    /// every pop is admitted and nothing is allocated.
    pub(crate) fn new(prog: &Program, svfg: &Svfg, comps: Vec<u32>, enabled: bool) -> RegionMemo {
        if !enabled {
            return RegionMemo {
                enabled: false,
                comp: Vec::new(),
                comp_ver: Vec::new(),
                node_ver: Vec::new(),
                last_comp: Vec::new(),
                last_node: Vec::new(),
                operand_spans: Vec::new(),
                operand_vals: Vec::new(),
                last_operand_ids: Vec::new(),
            };
        }
        let n = svfg.node_count();
        let mut operand_spans = Vec::with_capacity(n);
        let mut operand_vals = Vec::new();
        for node in svfg.node_ids() {
            let start = operand_vals.len() as u32;
            push_operands(prog, svfg.kind(node), &mut operand_vals);
            operand_spans.push((start, operand_vals.len() as u32 - start));
        }
        let n_comps = comps.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
        RegionMemo {
            enabled: true,
            comp: comps,
            comp_ver: vec![0; n_comps],
            node_ver: vec![0; n],
            last_comp: vec![NEVER; n],
            last_node: vec![0; n],
            last_operand_ids: vec![EMPTY; operand_vals.len()],
            operand_spans,
            operand_vals,
        }
    }

    /// Marks an effective delivery from `src`'s transfer into `dst`.
    /// A cross-region ship is a frontier event (every member of `dst`'s
    /// region goes stale); a ship within the region bumps only `dst`
    /// itself. Called at every effective delivery site, whether or not
    /// the accompanying worklist push was suppressed by the in-queue
    /// guard.
    pub(crate) fn invalidate_edge(&mut self, src: SvfgNodeId, dst: SvfgNodeId) {
        if !self.enabled {
            return;
        }
        let (cs, cd) = (self.comp[src.index()], self.comp[dst.index()]);
        if cs == cd {
            self.node_ver[dst.index()] += 1;
        } else {
            self.comp_ver[cd as usize] += 1;
        }
    }

    /// Marks new input delivered into `node` from a source without a
    /// producing SVFG node (a version-slot growth, or an activation
    /// changing a `FUNEXIT`'s caller list): `node`'s own stamp is no
    /// longer current.
    pub(crate) fn invalidate(&mut self, node: SvfgNodeId) {
        if self.enabled {
            self.node_ver[node.index()] += 1;
        }
    }

    /// Admission check, called once per node pop. Returns `false` when
    /// the pop may be skipped: the component stamp and the node's
    /// operand set ids are unchanged since its last run. Otherwise
    /// records the current stamp and operand ids — *before* the caller
    /// runs the transfer — and returns `true`.
    pub(crate) fn admit(
        &mut self,
        node: SvfgNodeId,
        pt: &IndexVec<ValueId, PtsId>,
        stats: &mut SolveStats,
    ) -> bool {
        if !self.enabled {
            return true;
        }
        let i = node.index();
        let cstamp = self.comp_ver[self.comp[i] as usize];
        let nstamp = self.node_ver[i];
        let (start, len) = self.operand_spans[i];
        let (start, end) = (start as usize, (start + len) as usize);
        if self.last_comp[i] == cstamp && self.last_node[i] == nstamp {
            stats.scc_fingerprint_hits += 1;
            let operands_current =
                (start..end).all(|k| self.last_operand_ids[k] == pt[self.operand_vals[k]]);
            if operands_current {
                stats.scc_solves_skipped += 1;
                return false;
            }
        }
        self.last_comp[i] = cstamp;
        self.last_node[i] = nstamp;
        for k in start..end {
            self.last_operand_ids[k] = pt[self.operand_vals[k]];
        }
        true
    }
}

/// The top-level values whose points-to sets the solvers' transfer of
/// this node reads. Values the transfer *writes* (`dst`, params, caller
/// `dst`s) are deliberately absent — outputs, not inputs. `FUNEXIT`'s
/// caller list and `CALL`'s callee list are inputs too, but they only
/// change on activation, which bumps the component stamp instead.
fn push_operands(prog: &Program, kind: SvfgNodeKind, out: &mut Vec<ValueId>) {
    let SvfgNodeKind::Inst(inst) = kind else {
        return; // relays read only component-delivered state
    };
    match &prog.insts[inst].kind {
        InstKind::Copy { src, .. } => out.push(*src),
        InstKind::Phi { srcs, .. } => out.extend_from_slice(srcs),
        InstKind::Field { base, .. } => out.push(*base),
        InstKind::Load { addr, .. } => out.push(*addr),
        InstKind::Store { addr, val } => out.extend([*addr, *val]),
        InstKind::Call { callee, args, .. } => {
            if let Callee::Indirect(fp) = callee {
                out.push(*fp);
            }
            out.extend_from_slice(args);
        }
        InstKind::FunExit { ret, .. } => out.extend(*ret),
        InstKind::Alloc { .. } | InstKind::Free { .. } | InstKind::FunEntry { .. } => {}
    }
}

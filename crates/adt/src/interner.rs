//! Hash-consing of sparse bit vectors.
//!
//! Meld labelling produces one label (a set of prelabels) per
//! (node, object) pair; many pairs share the same label. The interner maps
//! each distinct label to a dense `u32` id so the solver can compare and
//! index versions in O(1) and store the label set only once.

use crate::sbv::SparseBitVector;
use std::collections::HashMap;
use std::fmt;

/// A fixed-capacity id space ran out of ids.
///
/// Returned by [`SbvInterner::try_intern`] when the next id would exceed
/// the interner's limit (`u32::MAX` by default, or the cap given to
/// [`SbvInterner::with_limit`]). Callers on the governed path surface it
/// as `DegradeReason::CapacityExhausted` instead of aborting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityOverflow {
    /// The id-space size that was exceeded.
    pub limit: usize,
}

impl fmt::Display for CapacityOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "interner id space exhausted ({} ids)", self.limit)
    }
}

impl std::error::Error for CapacityOverflow {}

/// Interns [`SparseBitVector`]s, assigning each distinct vector a dense id.
///
/// Id 0 is always the empty vector (the identity label `ε`).
///
/// # Examples
///
/// ```
/// use vsfs_adt::{SbvInterner, SparseBitVector};
///
/// let mut pool = SbvInterner::new();
/// assert_eq!(pool.intern(&SparseBitVector::new()), SbvInterner::EMPTY);
/// let a: SparseBitVector = [1u32, 2].into_iter().collect();
/// let id = pool.intern(&a);
/// assert_eq!(pool.intern(&a), id);
/// assert_eq!(pool.get(id), &a);
/// ```
#[derive(Debug)]
pub struct SbvInterner {
    map: HashMap<SparseBitVector, u32>,
    vecs: Vec<SparseBitVector>,
    limit: usize,
}

impl Default for SbvInterner {
    fn default() -> Self {
        SbvInterner::new()
    }
}

impl SbvInterner {
    /// The id of the empty vector.
    pub const EMPTY: u32 = 0;

    /// Creates an interner pre-seeded with the empty vector at id 0.
    pub fn new() -> Self {
        Self::with_limit(u32::MAX as usize + 1)
    }

    /// Creates an interner that holds at most `limit` distinct vectors
    /// (including the empty one). Lets tests exercise the overflow path
    /// without interning four billion sets.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is 0 (the empty vector always occupies id 0) or
    /// exceeds the `u32` id space.
    pub fn with_limit(limit: usize) -> Self {
        assert!(limit >= 1 && limit <= u32::MAX as usize + 1, "bad interner limit {limit}");
        let mut i = SbvInterner { map: HashMap::new(), vecs: Vec::new(), limit };
        let id = i.try_intern(&SparseBitVector::new()).expect("limit >= 1");
        debug_assert_eq!(id, Self::EMPTY);
        i
    }

    /// Returns the id for `v`, allocating a new one if unseen.
    ///
    /// # Panics
    ///
    /// Panics on id-space overflow; governed callers use
    /// [`SbvInterner::try_intern`] instead and degrade cleanly.
    pub fn intern(&mut self, v: &SparseBitVector) -> u32 {
        self.try_intern(v).expect("interner overflow")
    }

    /// Returns the id for `v`, allocating a new one if unseen, or a
    /// [`CapacityOverflow`] once the id space is full.
    pub fn try_intern(&mut self, v: &SparseBitVector) -> Result<u32, CapacityOverflow> {
        if let Some(&id) = self.map.get(v) {
            return Ok(id);
        }
        if self.vecs.len() >= self.limit {
            return Err(CapacityOverflow { limit: self.limit });
        }
        let id = u32::try_from(self.vecs.len()).expect("limit bounds the id space");
        self.vecs.push(v.clone());
        self.map.insert(v.clone(), id);
        Ok(id)
    }

    /// Looks up a previously interned vector.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn get(&self, id: u32) -> &SparseBitVector {
        &self.vecs[id as usize]
    }

    /// Number of distinct vectors interned (including the empty one).
    pub fn len(&self) -> usize {
        self.vecs.len()
    }

    /// Returns `true` if only the empty vector has been interned.
    pub fn is_empty(&self) -> bool {
        self.vecs.len() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let mut p = SbvInterner::new();
        assert_eq!(p.intern(&SparseBitVector::new()), 0);
        assert_eq!(p.len(), 1);
        assert!(p.is_empty());
    }

    #[test]
    fn dedups_equal_vectors() {
        let mut p = SbvInterner::new();
        let a: SparseBitVector = [3u32, 999].into_iter().collect();
        let b: SparseBitVector = [999u32, 3].into_iter().collect();
        let ia = p.intern(&a);
        let ib = p.intern(&b);
        assert_eq!(ia, ib);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn distinct_vectors_get_distinct_ids() {
        let mut p = SbvInterner::new();
        let a: SparseBitVector = [1u32].into_iter().collect();
        let b: SparseBitVector = [2u32].into_iter().collect();
        let ia = p.intern(&a);
        let ib = p.intern(&b);
        assert_ne!(ia, ib);
        assert_eq!(p.get(ia), &a);
        assert_eq!(p.get(ib), &b);
    }

    #[test]
    fn limited_interner_reports_overflow() {
        // Room for ε plus one more vector.
        let mut p = SbvInterner::with_limit(2);
        let a: SparseBitVector = [1u32].into_iter().collect();
        let b: SparseBitVector = [2u32].into_iter().collect();
        let ia = p.try_intern(&a).expect("fits");
        assert_eq!(p.try_intern(&a), Ok(ia), "re-interning is always fine");
        assert_eq!(p.try_intern(&SparseBitVector::new()), Ok(SbvInterner::EMPTY));
        let err = p.try_intern(&b).unwrap_err();
        assert_eq!(err, CapacityOverflow { limit: 2 });
        assert!(err.to_string().contains("exhausted"));
    }
}

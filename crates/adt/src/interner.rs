//! Hash-consing of sparse bit vectors.
//!
//! Meld labelling produces one label (a set of prelabels) per
//! (node, object) pair; many pairs share the same label. The interner maps
//! each distinct label to a dense `u32` id so the solver can compare and
//! index versions in O(1) and store the label set only once.

use crate::sbv::SparseBitVector;
use std::collections::HashMap;

/// Interns [`SparseBitVector`]s, assigning each distinct vector a dense id.
///
/// Id 0 is always the empty vector (the identity label `ε`).
///
/// # Examples
///
/// ```
/// use vsfs_adt::{SbvInterner, SparseBitVector};
///
/// let mut pool = SbvInterner::new();
/// assert_eq!(pool.intern(&SparseBitVector::new()), SbvInterner::EMPTY);
/// let a: SparseBitVector = [1u32, 2].into_iter().collect();
/// let id = pool.intern(&a);
/// assert_eq!(pool.intern(&a), id);
/// assert_eq!(pool.get(id), &a);
/// ```
#[derive(Debug, Default)]
pub struct SbvInterner {
    map: HashMap<SparseBitVector, u32>,
    vecs: Vec<SparseBitVector>,
}

impl SbvInterner {
    /// The id of the empty vector.
    pub const EMPTY: u32 = 0;

    /// Creates an interner pre-seeded with the empty vector at id 0.
    pub fn new() -> Self {
        let mut i = SbvInterner { map: HashMap::new(), vecs: Vec::new() };
        let id = i.intern(&SparseBitVector::new());
        debug_assert_eq!(id, Self::EMPTY);
        i
    }

    /// Returns the id for `v`, allocating a new one if unseen.
    pub fn intern(&mut self, v: &SparseBitVector) -> u32 {
        if let Some(&id) = self.map.get(v) {
            return id;
        }
        let id = u32::try_from(self.vecs.len()).expect("interner overflow");
        self.vecs.push(v.clone());
        self.map.insert(v.clone(), id);
        id
    }

    /// Looks up a previously interned vector.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn get(&self, id: u32) -> &SparseBitVector {
        &self.vecs[id as usize]
    }

    /// Number of distinct vectors interned (including the empty one).
    pub fn len(&self) -> usize {
        self.vecs.len()
    }

    /// Returns `true` if only the empty vector has been interned.
    pub fn is_empty(&self) -> bool {
        self.vecs.len() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let mut p = SbvInterner::new();
        assert_eq!(p.intern(&SparseBitVector::new()), 0);
        assert_eq!(p.len(), 1);
        assert!(p.is_empty());
    }

    #[test]
    fn dedups_equal_vectors() {
        let mut p = SbvInterner::new();
        let a: SparseBitVector = [3u32, 999].into_iter().collect();
        let b: SparseBitVector = [999u32, 3].into_iter().collect();
        let ia = p.intern(&a);
        let ib = p.intern(&b);
        assert_eq!(ia, ib);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn distinct_vectors_get_distinct_ids() {
        let mut p = SbvInterner::new();
        let a: SparseBitVector = [1u32].into_iter().collect();
        let b: SparseBitVector = [2u32].into_iter().collect();
        let ia = p.intern(&a);
        let ib = p.intern(&b);
        assert_ne!(ia, ib);
        assert_eq!(p.get(ia), &a);
        assert_eq!(p.get(ib), &b);
    }
}

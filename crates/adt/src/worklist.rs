//! Worklists for fixpoint solvers.
//!
//! Both worklists deduplicate membership: pushing an element already queued
//! is a no-op. [`FifoWorklist`] pops in insertion order; [`PriorityWorklist`]
//! pops the element with the smallest priority (typically a reverse
//! post-order number, which makes data-flow fixpoints converge faster).

use crate::index::Idx;
use std::collections::{BinaryHeap, VecDeque};

/// FIFO worklist with O(1) membership dedup.
///
/// # Examples
///
/// ```
/// use vsfs_adt::FifoWorklist;
///
/// let mut wl: FifoWorklist<usize> = FifoWorklist::new(10);
/// assert!(wl.push(3));
/// assert!(!wl.push(3)); // already queued
/// assert_eq!(wl.pop(), Some(3));
/// assert!(wl.push(3)); // may be re-queued after popping
/// ```
#[derive(Debug, Clone)]
pub struct FifoWorklist<I> {
    queue: VecDeque<I>,
    queued: Vec<bool>,
}

impl<I: Idx> FifoWorklist<I> {
    /// Creates a worklist for elements with indices `< capacity`.
    pub fn new(capacity: usize) -> Self {
        FifoWorklist { queue: VecDeque::new(), queued: vec![false; capacity] }
    }

    /// Enqueues `item` unless already queued; returns `true` if enqueued.
    pub fn push(&mut self, item: I) -> bool {
        let i = item.index();
        if i >= self.queued.len() {
            self.queued.resize(i + 1, false);
        }
        if self.queued[i] {
            return false;
        }
        self.queued[i] = true;
        self.queue.push_back(item);
        true
    }

    /// Dequeues the oldest item, if any.
    pub fn pop(&mut self) -> Option<I> {
        let item = self.queue.pop_front()?;
        self.queued[item.index()] = false;
        Some(item)
    }

    /// Returns `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.queue.len()
    }
}

/// Min-priority worklist with membership dedup.
///
/// Elements are popped in ascending priority order. Typical use: priorities
/// are reverse post-order numbers of graph nodes.
///
/// # Examples
///
/// ```
/// use vsfs_adt::PriorityWorklist;
///
/// let mut wl: PriorityWorklist<usize> = PriorityWorklist::new(vec![2, 0, 1]);
/// wl.push(0);
/// wl.push(1);
/// wl.push(2);
/// assert_eq!(wl.pop(), Some(1)); // priority 0
/// assert_eq!(wl.pop(), Some(2)); // priority 1
/// assert_eq!(wl.pop(), Some(0)); // priority 2
/// ```
#[derive(Debug, Clone)]
pub struct PriorityWorklist<I> {
    heap: BinaryHeap<std::cmp::Reverse<(u32, I)>>,
    priority: Vec<u32>,
    queued: Vec<bool>,
}

impl<I: Idx> PriorityWorklist<I> {
    /// Creates a worklist where element `i` has priority `priority[i]`.
    pub fn new(priority: Vec<u32>) -> Self {
        let n = priority.len();
        PriorityWorklist { heap: BinaryHeap::new(), priority, queued: vec![false; n] }
    }

    /// Enqueues `item` unless already queued; returns `true` if enqueued.
    ///
    /// # Panics
    ///
    /// Panics if `item`'s index is out of range of the priority table.
    pub fn push(&mut self, item: I) -> bool {
        let i = item.index();
        if self.queued[i] {
            return false;
        }
        self.queued[i] = true;
        self.heap.push(std::cmp::Reverse((self.priority[i], item)));
        true
    }

    /// Dequeues the item with the smallest priority, if any.
    pub fn pop(&mut self) -> Option<I> {
        let std::cmp::Reverse((_, item)) = self.heap.pop()?;
        self.queued[item.index()] = false;
        Some(item)
    }

    /// Returns `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_dedups_until_pop() {
        let mut wl: FifoWorklist<usize> = FifoWorklist::new(4);
        assert!(wl.push(1));
        assert!(wl.push(2));
        assert!(!wl.push(1));
        assert_eq!(wl.len(), 2);
        assert_eq!(wl.pop(), Some(1));
        assert!(wl.push(1));
        assert_eq!(wl.pop(), Some(2));
        assert_eq!(wl.pop(), Some(1));
        assert_eq!(wl.pop(), None);
        assert!(wl.is_empty());
    }

    #[test]
    fn fifo_grows_beyond_capacity() {
        let mut wl: FifoWorklist<usize> = FifoWorklist::new(1);
        assert!(wl.push(100));
        assert_eq!(wl.pop(), Some(100));
    }

    #[test]
    fn priority_orders_by_priority_not_insertion() {
        let mut wl: PriorityWorklist<usize> = PriorityWorklist::new(vec![5, 1, 3]);
        wl.push(0);
        wl.push(2);
        wl.push(1);
        assert!(!wl.push(1));
        assert_eq!(wl.pop(), Some(1));
        assert_eq!(wl.pop(), Some(2));
        assert_eq!(wl.pop(), Some(0));
        assert_eq!(wl.pop(), None);
    }
}

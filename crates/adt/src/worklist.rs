//! Worklists for fixpoint solvers.
//!
//! All worklists deduplicate membership: pushing an element already queued
//! is a no-op (the *in-queue guard*). [`FifoWorklist`] pops in insertion
//! order; [`PriorityWorklist`] pops the element with the smallest rank
//! first, FIFO within a rank (typically the rank is a topological number
//! of the element's SCC in some dependence graph, which makes data-flow
//! fixpoints converge in far fewer visits). [`Worklist`] wraps either
//! behind one API with push/pop counters, so solvers can switch the
//! schedule at run time without changing the propagation code.

use crate::index::Idx;
use std::collections::VecDeque;

/// FIFO worklist with O(1) membership dedup.
///
/// # Examples
///
/// ```
/// use vsfs_adt::FifoWorklist;
///
/// let mut wl: FifoWorklist<usize> = FifoWorklist::new(10);
/// assert!(wl.push(3));
/// assert!(!wl.push(3)); // already queued
/// assert_eq!(wl.pop(), Some(3));
/// assert!(wl.push(3)); // may be re-queued after popping
/// ```
#[derive(Debug, Clone)]
pub struct FifoWorklist<I> {
    queue: VecDeque<I>,
    queued: Vec<bool>,
}

impl<I: Idx> FifoWorklist<I> {
    /// Creates a worklist for elements with indices `< capacity`.
    pub fn new(capacity: usize) -> Self {
        FifoWorklist { queue: VecDeque::new(), queued: vec![false; capacity] }
    }

    /// Enqueues `item` unless already queued; returns `true` if enqueued.
    pub fn push(&mut self, item: I) -> bool {
        let i = item.index();
        if i >= self.queued.len() {
            self.queued.resize(i + 1, false);
        }
        if self.queued[i] {
            return false;
        }
        self.queued[i] = true;
        self.queue.push_back(item);
        true
    }

    /// Dequeues the oldest item, if any.
    pub fn pop(&mut self) -> Option<I> {
        let item = self.queue.pop_front()?;
        self.queued[item.index()] = false;
        Some(item)
    }

    /// Returns `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.queue.len()
    }
}

/// Bucketed min-priority worklist with membership dedup.
///
/// Elements are popped in ascending rank order, FIFO within a rank, so
/// the pop sequence is fully deterministic: it depends only on the rank
/// table and the push sequence, never on element hash or heap layout.
/// Ranks are dense bucket indices (one `VecDeque` per rank), so push and
/// pop are O(1) amortised — the scan cursor only moves backwards when a
/// push lands below it, which data-flow solvers do exactly when a cycle
/// forces re-iteration.
///
/// Typical use: ranks are topological numbers of SCCs in a dependence
/// graph (see `vsfs_graph::condensation_ranks`), which makes a fixpoint
/// visit producers before consumers.
///
/// # Examples
///
/// ```
/// use vsfs_adt::PriorityWorklist;
///
/// let mut wl: PriorityWorklist<usize> = PriorityWorklist::new(vec![2, 0, 1]);
/// wl.push(0);
/// wl.push(1);
/// wl.push(2);
/// assert_eq!(wl.pop(), Some(1)); // rank 0
/// assert_eq!(wl.pop(), Some(2)); // rank 1
/// assert_eq!(wl.pop(), Some(0)); // rank 2
/// ```
#[derive(Debug, Clone)]
pub struct PriorityWorklist<I> {
    /// One FIFO bucket per rank.
    buckets: Vec<VecDeque<I>>,
    rank: Vec<u32>,
    /// In-queue guard: element present in some bucket.
    queued: Vec<bool>,
    /// Occupancy bitmap: bit `r` of `occ0[r / 64]` set iff bucket `r` is
    /// non-empty.
    occ0: Vec<u64>,
    /// Summary: bit `w` of `occ1[w / 64]` set iff `occ0[w] != 0`. Two
    /// levels keep the min-bucket search near O(1): a fixpoint drains
    /// buckets in long sparse runs, and a flat cursor scan over them is
    /// quadratic in practice (re-walked after every re-arm of the list).
    occ1: Vec<u64>,
    /// Lowest `occ1` word that may be non-zero.
    min_w1: usize,
    len: usize,
}

impl<I: Idx> PriorityWorklist<I> {
    /// Creates a worklist where element `i` has rank `rank[i]`.
    pub fn new(rank: Vec<u32>) -> Self {
        let n = rank.len();
        let bucket_count = rank.iter().map(|&r| r as usize + 1).max().unwrap_or(0);
        let w0 = bucket_count.div_ceil(64);
        let w1 = w0.div_ceil(64);
        PriorityWorklist {
            buckets: (0..bucket_count).map(|_| VecDeque::new()).collect(),
            rank,
            queued: vec![false; n],
            occ0: vec![0; w0],
            occ1: vec![0; w1],
            min_w1: w1,
            len: 0,
        }
    }

    /// Enqueues `item` unless already queued; returns `true` if enqueued.
    ///
    /// # Panics
    ///
    /// Panics if `item`'s index is out of range of the rank table.
    pub fn push(&mut self, item: I) -> bool {
        let i = item.index();
        if self.queued[i] {
            return false;
        }
        self.queued[i] = true;
        let r = self.rank[i] as usize;
        self.buckets[r].push_back(item);
        self.occ0[r / 64] |= 1 << (r % 64);
        self.occ1[r / 4096] |= 1 << ((r / 64) % 64);
        self.min_w1 = self.min_w1.min(r / 4096);
        self.len += 1;
        true
    }

    /// Dequeues the oldest item of the smallest non-empty rank, if any.
    pub fn pop(&mut self) -> Option<I> {
        if self.len == 0 {
            self.min_w1 = self.occ1.len();
            return None;
        }
        while self.occ1[self.min_w1] == 0 {
            self.min_w1 += 1;
        }
        let w0 = self.min_w1 * 64 + self.occ1[self.min_w1].trailing_zeros() as usize;
        let r = w0 * 64 + self.occ0[w0].trailing_zeros() as usize;
        let item = self.buckets[r].pop_front().expect("occupancy bit set for empty bucket");
        if self.buckets[r].is_empty() {
            self.occ0[w0] &= !(1 << (r % 64));
            if self.occ0[w0] == 0 {
                self.occ1[self.min_w1] &= !(1 << (w0 % 64));
            }
        }
        self.queued[item.index()] = false;
        self.len -= 1;
        Some(item)
    }

    /// Returns `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.len
    }
}

/// Counters describing one worklist's traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorklistStats {
    /// Successful enqueues.
    pub pushes: usize,
    /// Enqueues suppressed by the in-queue guard (element already queued).
    pub suppressed: usize,
    /// Dequeues.
    pub pops: usize,
}

/// A worklist whose scheduling policy is chosen at construction time —
/// FIFO or rank-bucketed priority — behind one API, with traffic
/// counters.
///
/// Both policies drain the same monotone constraint system to the same
/// unique least fixpoint; the policy changes *when* work happens (and so
/// how often elements are re-visited), never the answer.
///
/// # Examples
///
/// ```
/// use vsfs_adt::Worklist;
///
/// let mut wl: Worklist<usize> = Worklist::priority(vec![1, 0]);
/// wl.push(0);
/// wl.push(1);
/// wl.push(0); // suppressed by the in-queue guard
/// assert_eq!(wl.pop(), Some(1));
/// assert_eq!(wl.pop(), Some(0));
/// assert_eq!(wl.stats().suppressed, 1);
/// assert_eq!(wl.stats().pops, 2);
/// ```
#[derive(Debug, Clone)]
pub struct Worklist<I> {
    inner: WorklistImpl<I>,
    stats: WorklistStats,
}

#[derive(Debug, Clone)]
enum WorklistImpl<I> {
    Fifo(FifoWorklist<I>),
    Priority(PriorityWorklist<I>),
}

impl<I: Idx> Worklist<I> {
    /// A FIFO-scheduled worklist for elements with indices `< capacity`.
    pub fn fifo(capacity: usize) -> Self {
        Worklist {
            inner: WorklistImpl::Fifo(FifoWorklist::new(capacity)),
            stats: WorklistStats::default(),
        }
    }

    /// A rank-scheduled worklist where element `i` has rank `rank[i]`.
    pub fn priority(rank: Vec<u32>) -> Self {
        Worklist {
            inner: WorklistImpl::Priority(PriorityWorklist::new(rank)),
            stats: WorklistStats::default(),
        }
    }

    /// Enqueues `item` unless already queued; returns `true` if enqueued.
    pub fn push(&mut self, item: I) -> bool {
        let pushed = match &mut self.inner {
            WorklistImpl::Fifo(wl) => wl.push(item),
            WorklistImpl::Priority(wl) => wl.push(item),
        };
        if pushed {
            self.stats.pushes += 1;
        } else {
            self.stats.suppressed += 1;
        }
        pushed
    }

    /// Dequeues the next item under the chosen policy, if any.
    pub fn pop(&mut self) -> Option<I> {
        let item = match &mut self.inner {
            WorklistImpl::Fifo(wl) => wl.pop(),
            WorklistImpl::Priority(wl) => wl.pop(),
        };
        if item.is_some() {
            self.stats.pops += 1;
        }
        item
    }

    /// Returns `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        match &self.inner {
            WorklistImpl::Fifo(wl) => wl.is_empty(),
            WorklistImpl::Priority(wl) => wl.is_empty(),
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        match &self.inner {
            WorklistImpl::Fifo(wl) => wl.len(),
            WorklistImpl::Priority(wl) => wl.len(),
        }
    }

    /// The traffic counters so far.
    pub fn stats(&self) -> WorklistStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_dedups_until_pop() {
        let mut wl: FifoWorklist<usize> = FifoWorklist::new(4);
        assert!(wl.push(1));
        assert!(wl.push(2));
        assert!(!wl.push(1));
        assert_eq!(wl.len(), 2);
        assert_eq!(wl.pop(), Some(1));
        assert!(wl.push(1));
        assert_eq!(wl.pop(), Some(2));
        assert_eq!(wl.pop(), Some(1));
        assert_eq!(wl.pop(), None);
        assert!(wl.is_empty());
    }

    #[test]
    fn fifo_grows_beyond_capacity() {
        let mut wl: FifoWorklist<usize> = FifoWorklist::new(1);
        assert!(wl.push(100));
        assert_eq!(wl.pop(), Some(100));
    }

    #[test]
    fn priority_orders_by_rank_not_insertion() {
        let mut wl: PriorityWorklist<usize> = PriorityWorklist::new(vec![5, 1, 3]);
        wl.push(0);
        wl.push(2);
        wl.push(1);
        assert!(!wl.push(1));
        assert_eq!(wl.pop(), Some(1));
        assert_eq!(wl.pop(), Some(2));
        assert_eq!(wl.pop(), Some(0));
        assert_eq!(wl.pop(), None);
    }

    #[test]
    fn priority_is_fifo_within_a_rank() {
        let mut wl: PriorityWorklist<usize> = PriorityWorklist::new(vec![1, 0, 1, 1]);
        wl.push(3);
        wl.push(0);
        wl.push(2);
        wl.push(1);
        assert_eq!(wl.pop(), Some(1), "rank 0 first");
        // Rank 1 pops in push order, not index order.
        assert_eq!(wl.pop(), Some(3));
        assert_eq!(wl.pop(), Some(0));
        assert_eq!(wl.pop(), Some(2));
        assert!(wl.is_empty());
    }

    #[test]
    fn priority_cursor_rewinds_on_low_rank_push() {
        let mut wl: PriorityWorklist<usize> = PriorityWorklist::new(vec![0, 1, 2]);
        wl.push(2);
        assert_eq!(wl.pop(), Some(2)); // cursor now at rank 2
        wl.push(0); // rank 0: cursor must rewind
        wl.push(1);
        assert_eq!(wl.pop(), Some(0));
        assert_eq!(wl.pop(), Some(1));
        assert_eq!(wl.pop(), None);
        // Re-queue after popping is allowed, like the FIFO list.
        assert!(wl.push(1));
        assert_eq!(wl.pop(), Some(1));
    }

    #[test]
    fn priority_handles_empty_rank_table() {
        let mut wl: PriorityWorklist<usize> = PriorityWorklist::new(Vec::new());
        assert!(wl.is_empty());
        assert_eq!(wl.pop(), None);
    }

    #[test]
    fn wrapper_counts_traffic_for_both_policies() {
        for mut wl in [Worklist::<usize>::fifo(3), Worklist::priority(vec![0, 1, 2])] {
            assert!(wl.push(1));
            assert!(wl.push(2));
            assert!(!wl.push(1));
            assert_eq!(wl.len(), 2);
            assert!(!wl.is_empty());
            assert_eq!(wl.pop(), Some(1));
            assert_eq!(wl.pop(), Some(2));
            assert_eq!(wl.pop(), None);
            let s = wl.stats();
            assert_eq!(s.pushes, 2);
            assert_eq!(s.suppressed, 1);
            assert_eq!(s.pops, 2);
        }
    }

    /// Both policies drain the same pushes; priority returns them in
    /// rank-then-FIFO order.
    #[test]
    fn wrapper_policies_drain_identically_as_sets() {
        let ranks = vec![2, 0, 1, 0];
        let mut fifo = Worklist::fifo(4);
        let mut prio = Worklist::priority(ranks);
        for i in [0usize, 3, 2, 1] {
            fifo.push(i);
            prio.push(i);
        }
        let mut a: Vec<usize> = std::iter::from_fn(|| fifo.pop()).collect();
        let b: Vec<usize> = std::iter::from_fn(|| prio.pop()).collect();
        assert_eq!(b, vec![3, 1, 2, 0]);
        a.sort();
        let mut bs = b.clone();
        bs.sort();
        assert_eq!(a, bs);
    }
}

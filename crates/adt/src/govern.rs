//! Resource governance: budgets, cooperative cancellation, and typed
//! degradation outcomes for the long-running solver phases.
//!
//! The staged pipeline computes a sound Andersen over-approximation
//! before any flow-sensitive work, so resource exhaustion mid-VSFS has a
//! principled recovery: stop, and fall back to the auxiliary result.
//! This module provides the machinery that makes every solver entry
//! point *bounded* and *cancellable* without giving up determinism:
//!
//! * [`Budget`] — optional wall-clock, step-count, and live-heap-bytes
//!   limits (heap bytes come from the counting allocator in
//!   [`crate::mem`], so the memory cap only observes real usage in
//!   binaries that install [`crate::mem::CountingAlloc`]).
//! * [`CancelToken`] — a shared `AtomicBool` plus an optional absolute
//!   deadline; cloning shares the flag, so one `cancel()` stops every
//!   governor holding the token.
//! * [`Governor`] — the per-run monitor the solvers call at iteration
//!   boundaries ([`Governor::check`]). The first exhausted limit *trips*
//!   the governor: the reason is recorded once, the token is cancelled
//!   so parallel workers drain, and every later check fails fast.
//! * [`Outcome`]/[`Completion`] — the typed result of a governed phase:
//!   either `Complete` or `Degraded(reason)`, never a panic or an
//!   unbounded loop.
//! * [`FaultSpec`] — deterministic fault injection (panic at the Nth
//!   task, virtual deadline/allocation-cap trips at the Nth checkpoint)
//!   used by `vsfs-testkit` to exercise degradation paths identically at
//!   every `--jobs` count.
//!
//! # Determinism
//!
//! Checkpoints (and therefore step counts and injected trips) advance
//! only at *sequential* points of the solvers — worklist pops, the
//! ordered versioning reduce — never inside parallel workers, so a
//! step-budget or injected trip fires at the same logical point for any
//! job count. Real wall-clock and memory trips are inherently
//! scheduling-dependent; tests that need bit-identical degradation use
//! injected trips instead.

use std::any::Any;
use std::fmt;
use std::panic;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::time::{Duration, Instant};

use crate::mem;

/// How often (in checkpoints) the governor polls the clock and the
/// allocator. Budget arithmetic and fault injection run every
/// checkpoint; only the `Instant::now()` / allocator reads are
/// amortised.
const POLL_INTERVAL: u64 = 64;

/// Optional resource limits for one governed run. `None` fields are
/// unlimited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock limit, measured from [`Governor`] creation.
    pub time: Option<Duration>,
    /// Maximum solver steps (worklist pops / propagations) counted via
    /// [`Governor::check`].
    pub steps: Option<u64>,
    /// Maximum live heap bytes *above the baseline at governor
    /// creation*, as reported by [`mem::live_bytes`].
    pub mem_bytes: Option<usize>,
}

impl Budget {
    /// A budget with no limits.
    pub const fn unlimited() -> Self {
        Budget { time: None, steps: None, mem_bytes: None }
    }

    /// Sets the wall-clock limit.
    pub fn with_time(mut self, limit: Duration) -> Self {
        self.time = Some(limit);
        self
    }

    /// Sets the step limit.
    pub fn with_steps(mut self, limit: u64) -> Self {
        self.steps = Some(limit);
        self
    }

    /// Sets the live-heap limit in bytes.
    pub fn with_mem_bytes(mut self, limit: usize) -> Self {
        self.mem_bytes = Some(limit);
        self
    }

    /// Returns `true` if no limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.time.is_none() && self.steps.is_none() && self.mem_bytes.is_none()
    }
}

/// Why a [`CancelToken`] reports cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelCause {
    /// [`CancelToken::cancel`] was called.
    Cancelled,
    /// The token's absolute deadline has passed.
    DeadlineExceeded,
}

/// A shared cancellation flag with an optional absolute deadline.
///
/// Clones share the underlying flag: cancelling any clone cancels them
/// all. The deadline is per-token state copied by `clone`, so tokens
/// derived from one [`CancelToken::with_deadline`] call agree on it.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A fresh, uncancelled token with no deadline.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A fresh token that reports cancellation once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken { flag: Arc::new(AtomicBool::new(false)), deadline: Some(deadline) }
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Why the token is cancelled, or `None` if it is not. An explicit
    /// `cancel()` takes precedence over the deadline.
    pub fn cause(&self) -> Option<CancelCause> {
        if self.flag.load(Ordering::SeqCst) {
            return Some(CancelCause::Cancelled);
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => Some(CancelCause::DeadlineExceeded),
            _ => None,
        }
    }

    /// Returns `true` once cancelled or past the deadline.
    pub fn is_cancelled(&self) -> bool {
        self.cause().is_some()
    }

    /// The deadline this token enforces, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Wall-clock time left before the deadline: `None` for no deadline,
    /// `Some(ZERO)` once it has passed. Lets request handlers derive
    /// their own timeouts (e.g. socket read timeouts) from the same
    /// budget that governs the solve.
    pub fn time_left(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }
}

/// A worker task that panicked, caught and reported instead of aborting
/// the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerFault {
    /// Task index (deterministic: the caller keys tasks by input order).
    pub task: usize,
    /// The panic payload rendered as text.
    pub message: String,
}

impl fmt::Display for WorkerFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task {} panicked: {}", self.task, self.message)
    }
}

/// Why a governed phase stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DegradeReason {
    /// The wall-clock budget (or token deadline) was exhausted.
    Deadline,
    /// The step budget was exhausted.
    StepBudget,
    /// The live-heap budget was exhausted.
    MemBudget,
    /// The cancel token was triggered externally.
    Cancelled,
    /// A parallel worker task panicked.
    WorkerPanic(WorkerFault),
    /// A fixed-capacity structure (e.g. a `u32`-id interner) ran out of
    /// ids; the named resource cannot grow further.
    CapacityExhausted {
        /// Which structure overflowed (e.g. `"version interner"`).
        resource: &'static str,
    },
}

impl DegradeReason {
    /// A stable machine-readable code for stats output.
    pub fn code(&self) -> &'static str {
        match self {
            DegradeReason::Deadline => "deadline",
            DegradeReason::StepBudget => "step-budget",
            DegradeReason::MemBudget => "mem-budget",
            DegradeReason::Cancelled => "cancelled",
            DegradeReason::WorkerPanic(_) => "worker-panic",
            DegradeReason::CapacityExhausted { .. } => "capacity",
        }
    }
}

impl fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeReason::Deadline => write!(f, "wall-clock budget exhausted"),
            DegradeReason::StepBudget => write!(f, "step budget exhausted"),
            DegradeReason::MemBudget => write!(f, "memory budget exhausted"),
            DegradeReason::Cancelled => write!(f, "cancelled"),
            DegradeReason::WorkerPanic(w) => write!(f, "worker fault: {w}"),
            DegradeReason::CapacityExhausted { resource } => {
                write!(f, "capacity exhausted: {resource}")
            }
        }
    }
}

/// How a governed phase finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Completion {
    /// The phase ran to its natural fixpoint.
    Complete,
    /// The phase stopped early; the result is partial (or a fallback).
    Degraded(DegradeReason),
}

impl Completion {
    /// Returns `true` for [`Completion::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, Completion::Complete)
    }

    /// `"complete"` or `"degraded"`.
    pub fn code(&self) -> &'static str {
        match self {
            Completion::Complete => "complete",
            Completion::Degraded(_) => "degraded",
        }
    }
}

/// The typed result of a governed phase: a value plus how it finished.
#[derive(Debug)]
pub struct Outcome<T> {
    /// The phase result. On degradation this is whatever partial or
    /// fallback value the phase documents — callers must consult
    /// [`Outcome::completion`] before trusting it.
    pub result: T,
    /// Whether the phase completed or degraded.
    pub completion: Completion,
}

/// The kind of deterministic fault a [`FaultSpec`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the task whose index equals `at` (caught by the
    /// parallel driver and reported as a [`WorkerFault`]).
    PanicAtTask,
    /// Trip the governor with [`DegradeReason::Deadline`] at checkpoint
    /// number `at` — a virtual clock-skew fault, deterministic where a
    /// real deadline is not.
    DeadlineAtCheckpoint,
    /// Trip the governor with [`DegradeReason::MemBudget`] at checkpoint
    /// number `at` — a virtual allocation-cap fault.
    MemCapAtCheckpoint,
}

impl FaultKind {
    /// A stable machine-readable name (`panic`, `deadline`, `mem-cap`).
    pub fn code(&self) -> &'static str {
        match self {
            FaultKind::PanicAtTask => "panic",
            FaultKind::DeadlineAtCheckpoint => "deadline",
            FaultKind::MemCapAtCheckpoint => "mem-cap",
        }
    }
}

/// One deterministic injected fault. Built by hand or from a seed via
/// `vsfs_testkit::fault::FaultPlan`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: FaultKind,
    /// Task index (for [`FaultKind::PanicAtTask`]) or 1-based checkpoint
    /// number (for the virtual trips).
    pub at: u64,
}

/// Payload type for injected panics, so the panic hook can stay silent
/// about faults the test harness injected on purpose.
#[derive(Debug)]
pub struct InjectedPanic {
    /// The task index the fault was injected into.
    pub task: usize,
}

/// Interruption report from a governed parallel region: the tasks that
/// panicked (sorted by task index) and/or a cancellation notice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParInterrupt {
    /// Worker faults caught via `catch_unwind`, sorted by task index.
    pub faults: Vec<WorkerFault>,
    /// `true` if the region stopped because the governor was cancelled.
    pub cancelled: bool,
}

/// The per-run resource monitor. Shared by reference across threads
/// (all state is atomic or mutex-guarded); solvers call
/// [`Governor::check`] at sequential iteration boundaries and parallel
/// workers poll [`Governor::is_cancelled`].
#[derive(Debug)]
pub struct Governor {
    budget: Budget,
    cancel: CancelToken,
    fault: Option<FaultSpec>,
    deadline: Option<Instant>,
    mem_baseline: usize,
    steps: AtomicU64,
    checkpoints: AtomicU64,
    tripped: AtomicBool,
    reason: Mutex<Option<DegradeReason>>,
}

impl Governor {
    /// A governor over `budget` with a private cancel token.
    pub fn new(budget: Budget) -> Self {
        Governor::with_cancel(budget, CancelToken::new())
    }

    /// A governor with no limits (useful as a default argument).
    pub fn unlimited() -> Self {
        Governor::new(Budget::unlimited())
    }

    /// A governor over `budget` sharing an external cancel token, so one
    /// token can bound several pipeline stages under a common deadline.
    pub fn with_cancel(budget: Budget, cancel: CancelToken) -> Self {
        let now = Instant::now();
        Governor {
            deadline: budget.time.map(|d| now + d),
            mem_baseline: mem::live_bytes(),
            budget,
            cancel,
            fault: None,
            steps: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            tripped: AtomicBool::new(false),
            reason: Mutex::new(None),
        }
    }

    /// Attaches an injected fault. Installing a panic fault also arms
    /// the silencing panic hook so deliberate injections do not spam
    /// stderr.
    pub fn with_fault(mut self, fault: Option<FaultSpec>) -> Self {
        if matches!(fault, Some(FaultSpec { kind: FaultKind::PanicAtTask, .. })) {
            silence_injected_panics();
        }
        self.fault = fault;
        self
    }

    /// A clone of the governor's cancel token.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Steps accounted so far.
    pub fn steps(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Checkpoints passed so far.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints.load(Ordering::Relaxed)
    }

    /// Returns `true` once any limit has tripped.
    pub fn is_tripped(&self) -> bool {
        self.tripped.load(Ordering::Acquire)
    }

    /// The first recorded degradation reason, if any.
    pub fn reason(&self) -> Option<DegradeReason> {
        self.reason.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// The completion state implied by the governor's trip state.
    pub fn completion(&self) -> Completion {
        match self.reason() {
            Some(r) => Completion::Degraded(r),
            None => Completion::Complete,
        }
    }

    /// Records `reason` as the degradation cause (first writer wins) and
    /// cancels the token so every cooperating phase stops.
    pub fn trip(&self, reason: DegradeReason) {
        {
            let mut slot = self.reason.lock().unwrap_or_else(|e| e.into_inner());
            if slot.is_none() {
                *slot = Some(reason);
            }
        }
        self.tripped.store(true, Ordering::Release);
        self.cancel.cancel();
    }

    /// Records the outcome of an interrupted parallel region: a caught
    /// worker fault if there was one, otherwise the cancellation cause.
    pub fn note_interrupt(&self, interrupt: &ParInterrupt) {
        if let Some(f) = interrupt.faults.first() {
            self.trip(DegradeReason::WorkerPanic(f.clone()));
        } else {
            self.trip(match self.cancel.cause() {
                Some(CancelCause::DeadlineExceeded) => DegradeReason::Deadline,
                _ => DegradeReason::Cancelled,
            });
        }
    }

    /// Cheap cancellation poll for parallel workers: `true` once the
    /// governor tripped or the token cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.tripped.load(Ordering::Relaxed) || self.cancel.is_cancelled()
    }

    /// The cooperative checkpoint. Solvers call this at each iteration
    /// boundary with the number of steps since the last call; the
    /// governor accounts them, runs injected faults, and polls the
    /// clock/allocator every [`POLL_INTERVAL`] checkpoints. Returns
    /// `Err(reason)` once tripped — sticky, so callers can simply break
    /// their loop.
    pub fn check(&self, new_steps: u64) -> Result<(), DegradeReason> {
        if self.tripped.load(Ordering::Acquire) {
            return Err(self.reason().expect("tripped governor has a reason"));
        }
        let steps = self.steps.fetch_add(new_steps, Ordering::Relaxed) + new_steps;
        if let Some(max) = self.budget.steps {
            if steps > max {
                self.trip(DegradeReason::StepBudget);
                return Err(self.reason().expect("just tripped"));
            }
        }
        let cp = self.checkpoints.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(f) = self.fault {
            if f.at == cp {
                match f.kind {
                    FaultKind::DeadlineAtCheckpoint => self.trip(DegradeReason::Deadline),
                    FaultKind::MemCapAtCheckpoint => self.trip(DegradeReason::MemBudget),
                    // Panic injection happens inside the task driver.
                    FaultKind::PanicAtTask => {}
                }
                if self.is_tripped() {
                    return Err(self.reason().expect("just tripped"));
                }
            }
        }
        if let Some(cause) = self.cancel.cause() {
            self.trip(match cause {
                CancelCause::DeadlineExceeded => DegradeReason::Deadline,
                CancelCause::Cancelled => DegradeReason::Cancelled,
            });
            return Err(self.reason().expect("just tripped"));
        }
        if cp == 1 || cp.is_multiple_of(POLL_INTERVAL) {
            if let Some(dl) = self.deadline {
                if Instant::now() >= dl {
                    self.trip(DegradeReason::Deadline);
                    return Err(self.reason().expect("just tripped"));
                }
            }
            if let Some(cap) = self.budget.mem_bytes {
                if mem::live_bytes().saturating_sub(self.mem_baseline) > cap {
                    self.trip(DegradeReason::MemBudget);
                    return Err(self.reason().expect("just tripped"));
                }
            }
        }
        Ok(())
    }

    /// Fault-injection hook called by the task driver with each task
    /// index before running it; panics (with an [`InjectedPanic`]
    /// payload) when this governor carries a matching panic fault.
    pub fn maybe_inject_panic(&self, task: usize) {
        if let Some(FaultSpec { kind: FaultKind::PanicAtTask, at }) = self.fault {
            if task as u64 == at {
                panic::panic_any(InjectedPanic { task });
            }
        }
    }
}

/// Renders a caught panic payload as text for [`WorkerFault::message`].
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(inj) = payload.downcast_ref::<InjectedPanic>() {
        format!("injected panic at task {}", inj.task)
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

static SILENCE: Once = Once::new();

/// Installs (once, process-wide) a panic hook that suppresses output for
/// [`InjectedPanic`] payloads and forwards everything else to the
/// previous hook. Armed automatically when a panic fault is attached.
pub fn silence_injected_panics() {
    SILENCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_some() {
                return;
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_governor_never_trips() {
        let g = Governor::unlimited();
        for _ in 0..10_000 {
            assert!(g.check(3).is_ok());
        }
        assert!(g.completion().is_complete());
        assert_eq!(g.steps(), 30_000);
    }

    #[test]
    fn step_budget_trips_exactly_and_sticks() {
        let g = Governor::new(Budget::unlimited().with_steps(5));
        assert!(g.check(3).is_ok());
        assert!(g.check(2).is_ok()); // 5 <= 5: still inside the budget
        assert_eq!(g.check(1), Err(DegradeReason::StepBudget));
        // Sticky: later checks keep failing with the first reason.
        assert_eq!(g.check(0), Err(DegradeReason::StepBudget));
        assert_eq!(g.completion(), Completion::Degraded(DegradeReason::StepBudget));
        assert!(g.is_cancelled());
    }

    #[test]
    fn zero_step_budget_trips_on_first_step() {
        let g = Governor::new(Budget::unlimited().with_steps(0));
        assert_eq!(g.check(1), Err(DegradeReason::StepBudget));
    }

    #[test]
    fn cancel_token_is_shared_and_reported() {
        let token = CancelToken::new();
        let g = Governor::with_cancel(Budget::unlimited(), token.clone());
        assert!(g.check(1).is_ok());
        token.cancel();
        assert_eq!(g.check(1), Err(DegradeReason::Cancelled));
    }

    #[test]
    fn expired_deadline_token_reports_deadline() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        let g = Governor::with_cancel(Budget::unlimited(), token);
        assert_eq!(g.check(1), Err(DegradeReason::Deadline));
    }

    #[test]
    fn time_budget_trips_at_poll_boundary() {
        let g = Governor::new(Budget::unlimited().with_time(Duration::ZERO));
        // cp 1 polls the clock immediately.
        assert_eq!(g.check(1), Err(DegradeReason::Deadline));
    }

    #[test]
    fn injected_virtual_trips_fire_at_exact_checkpoint() {
        let g = Governor::new(Budget::unlimited())
            .with_fault(Some(FaultSpec { kind: FaultKind::DeadlineAtCheckpoint, at: 3 }));
        assert!(g.check(1).is_ok());
        assert!(g.check(1).is_ok());
        assert_eq!(g.check(1), Err(DegradeReason::Deadline));

        let g = Governor::new(Budget::unlimited())
            .with_fault(Some(FaultSpec { kind: FaultKind::MemCapAtCheckpoint, at: 2 }));
        assert!(g.check(1).is_ok());
        assert_eq!(g.check(1), Err(DegradeReason::MemBudget));
    }

    #[test]
    fn trip_is_first_writer_wins() {
        let g = Governor::unlimited();
        g.trip(DegradeReason::MemBudget);
        g.trip(DegradeReason::Deadline);
        assert_eq!(g.reason(), Some(DegradeReason::MemBudget));
    }

    #[test]
    fn panic_message_renders_known_payloads() {
        assert_eq!(panic_message(&"boom"), "boom");
        assert_eq!(panic_message(&"boom".to_string()), "boom");
        assert_eq!(panic_message(&InjectedPanic { task: 7 }), "injected panic at task 7");
        assert_eq!(panic_message(&42u32), "worker panicked");
    }
}

//! Core abstract data types for the VSFS pointer-analysis workspace.
//!
//! This crate provides the low-level building blocks shared by every other
//! crate in the workspace:
//!
//! * [`SparseBitVector`] — a sparse bit set mirroring LLVM's
//!   `SparseBitVector`, used both for points-to sets and for meld labels
//!   (the paper's versions are sets of prelabels melded with bitwise-or).
//! * [`PointsToSet`] — a thin, element-typed wrapper over
//!   [`SparseBitVector`].
//! * [`index`] — typed `u32` indices ([`define_index!`](crate::define_index)) and dense
//!   index-keyed vectors ([`IndexVec`]).
//! * [`worklist`] — FIFO and rank-bucketed priority worklists with
//!   membership dedup, unified behind a policy-switchable [`Worklist`].
//! * [`mem`] — a counting global allocator used by the benchmark harness to
//!   report peak live bytes (the reproduction's substitute for GNU `time`'s
//!   max-RSS column in Table III).
//! * [`interner`] — hash-consing of sparse bit vectors, used to map meld
//!   labels to dense version ids.
//! * [`ptstore`] — hash-consed points-to sets ([`PtsId`] handles into a
//!   shared [`PtsStore`]) with memoized `union`/`insert` algebra, the
//!   storage representation of every solver stage.
//! * [`par`] — std-only deterministic parallelism: a sharded
//!   work-stealing worklist, cost-balanced partitioners, and a
//!   scoped-thread task driver used by the parallel solver phases.
//! * [`govern`] — resource budgets, cooperative cancellation, and typed
//!   [`Outcome`]s so every long-running solver entry point is bounded
//!   and degrades instead of dying.
//!
//! # Examples
//!
//! ```
//! use vsfs_adt::SparseBitVector;
//!
//! let mut a = SparseBitVector::new();
//! a.insert(3);
//! a.insert(400);
//! let mut b = SparseBitVector::new();
//! b.insert(400);
//! b.insert(7);
//! assert!(a.union_with(&b)); // changed
//! assert_eq!(a.iter().collect::<Vec<_>>(), vec![3, 7, 400]);
//! ```

pub mod govern;
pub mod index;
pub mod interner;
pub mod meldpool;
pub mod mem;
pub mod par;
pub mod ptstore;
pub mod sbv;
pub mod stats;
pub mod worklist;

pub use govern::{
    Budget, CancelToken, Completion, DegradeReason, FaultKind, FaultSpec, Governor, Outcome,
    WorkerFault,
};
pub use index::IndexVec;
pub use interner::{CapacityOverflow, SbvInterner};
pub use meldpool::MeldPool;
pub use par::{ParConfig, ParStats, ShardedWorklist};
pub use ptstore::{CarryStats, FlatReader, PtsCarry, PtsId, PtsScratch, PtsStore, PtsStoreStats};
pub use sbv::SparseBitVector;
pub use worklist::{FifoWorklist, PriorityWorklist, Worklist, WorklistStats};

use std::fmt;
use std::marker::PhantomData;

/// A set of elements identified by a typed `u32` index, backed by a
/// [`SparseBitVector`].
///
/// `PointsToSet<ObjId>` is the canonical points-to set of the analyses;
/// the same type with other index types is used for label sets and
/// reachability sets.
///
/// # Examples
///
/// ```
/// use vsfs_adt::{define_index, PointsToSet};
///
/// define_index!(ObjId, "o");
/// let mut pts = PointsToSet::<ObjId>::new();
/// pts.insert(ObjId::new(4));
/// assert!(pts.contains(ObjId::new(4)));
/// assert_eq!(pts.len(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct PointsToSet<I> {
    bits: SparseBitVector,
    _marker: PhantomData<I>,
}

impl<I> Default for PointsToSet<I> {
    fn default() -> Self {
        PointsToSet { bits: SparseBitVector::new(), _marker: PhantomData }
    }
}

impl<I: index::Idx> PointsToSet<I> {
    /// Creates an empty set.
    pub fn new() -> Self {
        PointsToSet { bits: SparseBitVector::new(), _marker: PhantomData }
    }

    /// Creates a set holding a single element.
    pub fn singleton(elem: I) -> Self {
        let mut s = Self::new();
        s.insert(elem);
        s
    }

    /// Inserts `elem`, returning `true` if it was not already present.
    pub fn insert(&mut self, elem: I) -> bool {
        self.bits.insert(elem.index() as u32)
    }

    /// Removes `elem`, returning `true` if it was present.
    pub fn remove(&mut self, elem: I) -> bool {
        self.bits.remove(elem.index() as u32)
    }

    /// Returns `true` if `elem` is in the set.
    pub fn contains(&self, elem: I) -> bool {
        self.bits.contains(elem.index() as u32)
    }

    /// Unions `other` into `self`; returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &Self) -> bool {
        self.bits.union_with(&other.bits)
    }

    /// Removes every element of `other` from `self`; returns `true` if
    /// `self` changed.
    pub fn subtract(&mut self, other: &Self) -> bool {
        self.bits.subtract(&other.bits)
    }

    /// Keeps only elements also present in `other`; returns `true` if
    /// `self` changed.
    pub fn intersect_with(&mut self, other: &Self) -> bool {
        self.bits.intersect_with(&other.bits)
    }

    /// Returns `true` if the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Returns `true` if every element of `other` is in `self`.
    pub fn is_superset(&self, other: &Self) -> bool {
        self.bits.is_superset(&other.bits)
    }

    /// Returns `true` if the two sets share no elements.
    pub fn is_disjoint(&self, other: &Self) -> bool {
        self.bits.is_disjoint(&other.bits)
    }

    /// Iterates elements in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = I> + '_ {
        self.bits.iter().map(|raw| I::from_index(raw as usize))
    }

    /// If the set holds exactly one element, returns it.
    pub fn as_singleton(&self) -> Option<I> {
        self.bits.as_singleton().map(|raw| I::from_index(raw as usize))
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.bits.clear();
    }

    /// Access to the underlying untyped bit vector.
    pub fn raw(&self) -> &SparseBitVector {
        &self.bits
    }

    /// Builds a typed set from an untyped bit vector.
    pub fn from_raw(bits: SparseBitVector) -> Self {
        PointsToSet { bits, _marker: PhantomData }
    }

    /// Approximate heap footprint in bytes (used for logical memory stats).
    pub fn heap_bytes(&self) -> usize {
        self.bits.heap_bytes()
    }
}

impl<I: index::Idx> FromIterator<I> for PointsToSet<I> {
    fn from_iter<T: IntoIterator<Item = I>>(iter: T) -> Self {
        let mut s = Self::new();
        for e in iter {
            s.insert(e);
        }
        s
    }
}

impl<I: index::Idx> Extend<I> for PointsToSet<I> {
    fn extend<T: IntoIterator<Item = I>>(&mut self, iter: T) {
        for e in iter {
            self.insert(e);
        }
    }
}

impl<I: index::Idx + fmt::Debug> fmt::Debug for PointsToSet<I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    crate::define_index!(TestId, "t");

    #[test]
    fn typed_set_basic() {
        let mut s = PointsToSet::<TestId>::new();
        assert!(s.is_empty());
        assert!(s.insert(TestId::new(10)));
        assert!(!s.insert(TestId::new(10)));
        assert!(s.contains(TestId::new(10)));
        assert_eq!(s.len(), 1);
        assert_eq!(s.as_singleton(), Some(TestId::new(10)));
        assert!(s.insert(TestId::new(2)));
        assert_eq!(s.as_singleton(), None);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![TestId::new(2), TestId::new(10)]);
    }

    #[test]
    fn typed_set_ops() {
        let a: PointsToSet<TestId> = [1u32, 5, 9].iter().map(|&i| TestId::new(i)).collect();
        let b: PointsToSet<TestId> = [5u32, 7].iter().map(|&i| TestId::new(i)).collect();
        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert_eq!(u.len(), 4);
        assert!(u.is_superset(&a) && u.is_superset(&b));
        let mut d = u.clone();
        assert!(d.subtract(&a));
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![TestId::new(7)]);
        assert!(d.is_disjoint(&a));
    }
}

//! Hash-consed points-to sets with a hierarchical shared-chunk
//! representation and memoized set algebra — the data level of the
//! multi-level deduplication engine (DESIGN.md §15).
//!
//! The MDE line of work (PAPERS.md) observes that a flow-sensitive
//! pointer analysis is dominated by *repetition*: most `(node, object)`
//! slots hold one of a few distinct sets, the same unions recur millions
//! of times, and near-identical large sets differ in a handful of
//! elements. This module deduplicates all three levels of that
//! repetition:
//!
//! * every distinct points-to set is *interned* once and referred to by a
//!   dense [`PtsId`] — equality and assignment become `u32` compares;
//! * each set is stored as a *spine* of fixed-width chunk handles
//!   (one chunk = one aligned 128-bit block), and the chunks themselves
//!   are interned in a shared chunk store — two large sets that differ in
//!   one chunk share the storage for all the others;
//! * the algebra over ids (`union`, `insert`, `subtract`, `intersect`)
//!   is memoized on id pairs, and the miss path operates chunk-wise:
//!   equal chunk handles short-circuit without touching bit data, and
//!   chunk-level unions are memoized on handle pairs.
//!
//! [`PtsStore::union_would_change`] answers the solvers' hottest
//! question — "would propagating `b` into `a` grow it?" — without
//! materialising the union.
//!
//! Ids are assigned in first-intern order, so any solver that performs
//! store operations in a deterministic order gets deterministic ids; the
//! parallel wave phase keeps this property by confining workers to
//! read-only [`PtsScratch`]es whose materialised results are interned at
//! the sequential barrier in a fixed order (see DESIGN.md §6).
//!
//! # Examples
//!
//! ```
//! use vsfs_adt::{define_index, PtsStore, PointsToSet};
//!
//! define_index!(ObjId, "o");
//! let mut store = PtsStore::<ObjId>::new();
//! let a = store.insert(PtsStore::<ObjId>::EMPTY, ObjId::new(1));
//! let b = store.insert(PtsStore::<ObjId>::EMPTY, ObjId::new(2));
//! let ab = store.union(a, b);
//! assert_eq!(store.union(b, a), ab);          // memoized, order-insensitive
//! assert_eq!(store.union(ab, a), ab);         // absorption
//! assert!(!store.union_would_change(ab, b));  // subset: no growth
//! assert_eq!(store.set_len(ab), 2);
//! assert!(store.contains(ab, ObjId::new(1)));
//! ```

use crate::index::Idx;
use crate::PointsToSet;
use std::collections::HashMap;
use std::marker::PhantomData;

crate::define_index!(
    /// A dense handle to an interned canonical points-to set.
    ///
    /// `PtsId(0)` is always the empty set ([`PtsStore::EMPTY`]).
    PtsId,
    "ps"
);

/// Bits covered by one chunk (one aligned sparse-bit-vector block).
const CHUNK_BITS: u32 = 128;
/// Physical bytes of one chunk in the flat representation: a 4-byte base
/// plus two 8-byte words, padded to 24 (`sbv::Block` layout).
const CHUNK_FLAT_BYTES: usize = 24;

/// One interned chunk: an aligned 128-bit block of the element space.
type Chunk = (u32, [u64; 2]);

/// A handle into the shared chunk store.
type ChunkId = u32;

/// Counters describing a [`PtsStore`]'s effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PtsStoreStats {
    /// Distinct canonical sets interned (including the empty set).
    pub unique_sets: usize,
    /// Heap bytes of the chunked payload: spine handles plus the shared
    /// chunk data (the dedup'd footprint the flat bytes compare against).
    pub unique_set_bytes: usize,
    /// Heap bytes the same canonical sets would occupy flat, one private
    /// 24-byte block per chunk instance (the pre-chunking footprint).
    pub flat_equiv_bytes: usize,
    /// Distinct chunks interned in the shared chunk store.
    pub unique_chunks: usize,
    /// Heap bytes of the shared chunk data alone.
    pub chunk_bytes: usize,
    /// Chunk-level unions answered without touching bit data: equal
    /// handles short-circuited or the chunk memo hit.
    pub chunk_union_hits: usize,
    /// Chunk-level unions that had to OR two chunks' words.
    pub chunk_union_misses: usize,
    /// `union` calls answered by an algebraic shortcut (`a ∪ a`,
    /// `a ∪ ∅`) without touching the memo or any set data.
    pub union_shortcuts: usize,
    /// `union` calls answered by the memo table.
    pub union_hits: usize,
    /// `union` calls that had to consult set data (subset test or a
    /// fresh union) — the memo misses.
    pub union_misses: usize,
    /// `insert` calls answered by the memo table or a containment check.
    pub insert_hits: usize,
    /// `insert` calls that materialised a new set.
    pub insert_misses: usize,
    /// `union_would_change` calls answered without touching set data
    /// (shortcut or memo).
    pub would_change_fast: usize,
    /// `union_would_change` calls that fell back to a subset test.
    pub would_change_slow: usize,
    /// `diff`/`subtract` calls answered by a shortcut or the memo table.
    pub diff_hits: usize,
    /// `diff`/`subtract` calls that had to consult set data.
    pub diff_misses: usize,
}

impl PtsStoreStats {
    /// Fraction of non-shortcut `union` calls served by the memo.
    pub fn union_hit_rate(&self) -> f64 {
        let total = self.union_hits + self.union_misses;
        if total == 0 {
            0.0
        } else {
            self.union_hits as f64 / total as f64
        }
    }

    /// Fraction of the flat footprint saved by the chunked
    /// representation: `1 - unique_set_bytes / flat_equiv_bytes`.
    pub fn payload_reduction(&self) -> f64 {
        if self.flat_equiv_bytes == 0 {
            0.0
        } else {
            1.0 - self.unique_set_bytes as f64 / self.flat_equiv_bytes as f64
        }
    }
}

/// Interns canonical points-to sets behind a shared chunk store and
/// memoizes the algebra over them.
///
/// One store is shared by every stage of a solver run: identical sets
/// across Andersen's `pts`/`prop`, SFS `IN`/`OUT` entries, VSFS version
/// slots, and top-level variables are stored once — and sets that are
/// merely *similar* share their common chunks.
#[derive(Debug, Clone, Default)]
pub struct PtsStore<I: Idx> {
    /// Interned chunk data, indexed by [`ChunkId`].
    chunks: Vec<Chunk>,
    chunk_ids: HashMap<Chunk, ChunkId>,
    /// Chunk-level union memo on unordered handle pairs (same base).
    chunk_union_memo: HashMap<(ChunkId, ChunkId), ChunkId>,
    /// Spine arena: each set's chunk handles, ascending by chunk base.
    spine_arena: Vec<ChunkId>,
    /// Per-set `(arena start, chunk count)`, indexed by [`PtsId`].
    sets: Vec<(u32, u32)>,
    /// Interning map from spine content to id.
    ids: HashMap<Box<[ChunkId]>, PtsId>,
    union_memo: HashMap<(PtsId, PtsId), PtsId>,
    insert_memo: HashMap<(PtsId, u32), PtsId>,
    diff_memo: HashMap<(PtsId, PtsId), PtsId>,
    intersect_memo: HashMap<(PtsId, PtsId), PtsId>,
    stats: PtsStoreStats,
    epoch: u64,
    _marker: PhantomData<I>,
}

impl<I: Idx> PtsStore<I> {
    /// The id of the empty set.
    pub const EMPTY: PtsId = PtsId::new(0);

    /// Creates a store pre-seeded with the empty set at id 0.
    pub fn new() -> Self {
        let mut s = PtsStore {
            chunks: Vec::new(),
            chunk_ids: HashMap::new(),
            chunk_union_memo: HashMap::new(),
            spine_arena: Vec::new(),
            sets: Vec::new(),
            ids: HashMap::new(),
            union_memo: HashMap::new(),
            insert_memo: HashMap::new(),
            diff_memo: HashMap::new(),
            intersect_memo: HashMap::new(),
            stats: PtsStoreStats::default(),
            epoch: 0,
            _marker: PhantomData,
        };
        let e = s.intern_spine(&[]);
        debug_assert_eq!(e, Self::EMPTY);
        s
    }

    /// The store's carry generation (0 for a fresh store).
    ///
    /// An incremental solver does not mutate a resident store in place:
    /// after an edit it starts from [`PtsStore::next_epoch`] and carries
    /// the surviving sets over with a [`PtsCarry`], so sets reachable only
    /// from invalidated state are dropped wholesale rather than leaked
    /// across requests.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// An empty successor store whose epoch is one past this store's.
    pub fn next_epoch(&self) -> PtsStore<I> {
        let mut s = PtsStore::new();
        s.epoch = self.epoch + 1;
        s
    }

    /// The spine (chunk handles) of `id`.
    fn spine(&self, id: PtsId) -> &[ChunkId] {
        let (start, len) = self.sets[id.index()];
        &self.spine_arena[start as usize..(start + len) as usize]
    }

    /// The `(start, len)` arena range of `id` — lets op loops read the
    /// arena positionally while mutating the chunk tables.
    fn spine_range(&self, id: PtsId) -> (usize, usize) {
        let (start, len) = self.sets[id.index()];
        (start as usize, len as usize)
    }

    /// Interns a chunk, returning its handle.
    fn intern_chunk(&mut self, chunk: Chunk) -> ChunkId {
        debug_assert!(chunk.1 != [0, 0], "empty chunks are never stored");
        if let Some(&c) = self.chunk_ids.get(&chunk) {
            return c;
        }
        let c = self.chunks.len() as ChunkId;
        self.chunks.push(chunk);
        self.chunk_ids.insert(chunk, c);
        c
    }

    /// Interns a spine (already sorted by chunk base), returning its id.
    fn intern_spine(&mut self, spine: &[ChunkId]) -> PtsId {
        if let Some(&id) = self.ids.get(spine) {
            return id;
        }
        let start = self.spine_arena.len() as u32;
        self.spine_arena.extend_from_slice(spine);
        let id = PtsId::from_index(self.sets.len());
        self.sets.push((start, spine.len() as u32));
        self.ids.insert(spine.into(), id);
        id
    }

    /// The union of two chunks with the same base, interned; memoized on
    /// the unordered handle pair.
    fn chunk_union(&mut self, x: ChunkId, y: ChunkId) -> ChunkId {
        if x == y {
            self.stats.chunk_union_hits += 1;
            return x;
        }
        let key = if x < y { (x, y) } else { (y, x) };
        if let Some(&r) = self.chunk_union_memo.get(&key) {
            self.stats.chunk_union_hits += 1;
            return r;
        }
        self.stats.chunk_union_misses += 1;
        let (base, xw) = self.chunks[x as usize];
        let (_, yw) = self.chunks[y as usize];
        let merged = [xw[0] | yw[0], xw[1] | yw[1]];
        let r = if merged == xw {
            x
        } else if merged == yw {
            y
        } else {
            self.intern_chunk((base, merged))
        };
        self.chunk_union_memo.insert(key, r);
        r
    }

    /// Returns the id for `set`, interning it if unseen.
    pub fn intern(&mut self, set: &PointsToSet<I>) -> PtsId {
        let mut spine: Vec<ChunkId> = Vec::with_capacity(set.raw().block_count());
        for chunk in set.raw().raw_blocks() {
            spine.push(self.intern_chunk(chunk));
        }
        self.intern_spine(&spine)
    }

    /// Looks up the id of `set` without interning it.
    pub fn lookup(&self, set: &PointsToSet<I>) -> Option<PtsId> {
        let mut spine: Vec<ChunkId> = Vec::with_capacity(set.raw().block_count());
        for chunk in set.raw().raw_blocks() {
            spine.push(*self.chunk_ids.get(&chunk)?);
        }
        self.ids.get(spine.as_slice()).copied()
    }

    /// Materialises the canonical set behind `id` as an owned flat set.
    ///
    /// This is the boundary API: solvers operate on ids and the
    /// element-level accessors ([`PtsStore::contains`],
    /// [`PtsStore::iter_set`], [`PtsStore::set_len`]); materialisation is
    /// for results leaving the store (printing, diffing, carrying).
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this store.
    pub fn materialize(&self, id: PtsId) -> PointsToSet<I> {
        let blocks = self.spine(id).iter().map(|&c| self.chunks[c as usize]);
        PointsToSet::from_raw(crate::SparseBitVector::from_raw_blocks(blocks))
    }

    /// Returns `true` if `elem` is in the set behind `id`.
    pub fn contains(&self, id: PtsId, elem: I) -> bool {
        let e = elem.index() as u32;
        let base = e & !(CHUNK_BITS - 1);
        let (start, len) = self.spine_range(id);
        let spine = &self.spine_arena[start..start + len];
        match spine.binary_search_by_key(&base, |&c| self.chunks[c as usize].0) {
            Ok(i) => {
                let (_, words) = self.chunks[spine[i] as usize];
                words[((e - base) / 64) as usize] & (1u64 << (e % 64)) != 0
            }
            Err(_) => false,
        }
    }

    /// Number of elements in the set behind `id`.
    pub fn set_len(&self, id: PtsId) -> usize {
        self.spine(id)
            .iter()
            .map(|&c| {
                let (_, w) = self.chunks[c as usize];
                (w[0].count_ones() + w[1].count_ones()) as usize
            })
            .sum()
    }

    /// Returns `true` if `id` is the empty set (canonical, so this is an
    /// id compare).
    pub fn set_is_empty(&self, id: PtsId) -> bool {
        id == Self::EMPTY
    }

    /// If the set behind `id` holds exactly one element, returns it.
    pub fn as_singleton(&self, id: PtsId) -> Option<I> {
        let spine = self.spine(id);
        if spine.len() != 1 {
            return None;
        }
        let (base, w) = self.chunks[spine[0] as usize];
        if w[0].count_ones() + w[1].count_ones() != 1 {
            return None;
        }
        let bit = if w[0] != 0 { w[0].trailing_zeros() } else { 64 + w[1].trailing_zeros() };
        Some(I::from_index((base + bit) as usize))
    }

    /// Iterates the elements of the set behind `id`, ascending.
    pub fn iter_set(&self, id: PtsId) -> SetIter<'_, I> {
        let (start, len) = self.spine_range(id);
        SetIter {
            chunks: &self.chunks,
            spine: &self.spine_arena[start..start + len],
            pos: 0,
            word_idx: 0,
            word: 0,
            primed: false,
            _marker: PhantomData,
        }
    }

    /// Heap bytes the set behind `id` would occupy as a private flat
    /// bit vector — the logical (pre-dedup) footprint used by the
    /// delta-propagation byte counters.
    pub fn flat_bytes(&self, id: PtsId) -> usize {
        let (_, len) = self.sets[id.index()];
        len as usize * CHUNK_FLAT_BYTES
    }

    /// The set containing exactly `elem`.
    pub fn singleton(&mut self, elem: I) -> PtsId {
        self.insert(Self::EMPTY, elem)
    }

    /// The set `a ∪ {elem}`, memoized on `(a, elem)`.
    pub fn insert(&mut self, a: PtsId, elem: I) -> PtsId {
        let e = elem.index() as u32;
        let key = (a, e);
        if let Some(&r) = self.insert_memo.get(&key) {
            self.stats.insert_hits += 1;
            return r;
        }
        let r = if self.contains(a, elem) {
            self.stats.insert_hits += 1;
            a
        } else {
            self.stats.insert_misses += 1;
            let base = e & !(CHUNK_BITS - 1);
            let word = ((e - base) / 64) as usize;
            let bit = 1u64 << (e % 64);
            let (start, len) = self.spine_range(a);
            let mut spine: Vec<ChunkId> = self.spine_arena[start..start + len].to_vec();
            match spine.binary_search_by_key(&base, |&c| self.chunks[c as usize].0) {
                Ok(i) => {
                    let (_, mut w) = self.chunks[spine[i] as usize];
                    w[word] |= bit;
                    spine[i] = self.intern_chunk((base, w));
                }
                Err(i) => {
                    let mut w = [0u64; 2];
                    w[word] = bit;
                    let c = self.intern_chunk((base, w));
                    spine.insert(i, c);
                }
            }
            self.intern_spine(&spine)
        };
        self.insert_memo.insert(key, r);
        r
    }

    /// Chunk-wise subset test: every element of `b` is in `a`. Shared
    /// handles short-circuit whole chunks without touching bit data.
    fn spine_is_superset(&self, a: PtsId, b: PtsId) -> bool {
        let (astart, alen) = self.spine_range(a);
        let (bstart, blen) = self.spine_range(b);
        let mut i = 0;
        'outer: for jb in 0..blen {
            let bc = self.spine_arena[bstart + jb];
            let (bbase, bw) = self.chunks[bc as usize];
            while i < alen {
                let ac = self.spine_arena[astart + i];
                if ac == bc {
                    i += 1;
                    continue 'outer;
                }
                let (abase, aw) = self.chunks[ac as usize];
                if abase < bbase {
                    i += 1;
                } else if abase > bbase {
                    return false;
                } else {
                    if bw[0] & !aw[0] != 0 || bw[1] & !aw[1] != 0 {
                        return false;
                    }
                    i += 1;
                    continue 'outer;
                }
            }
            return false;
        }
        true
    }

    /// The set `a ∪ b`, memoized on the unordered id pair. The miss path
    /// is a chunk-wise merge: chunks present on only one side are shared
    /// by handle, and chunk-level unions are memoized.
    pub fn union(&mut self, a: PtsId, b: PtsId) -> PtsId {
        if a == b || b == Self::EMPTY {
            self.stats.union_shortcuts += 1;
            return a;
        }
        if a == Self::EMPTY {
            self.stats.union_shortcuts += 1;
            return b;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if let Some(&r) = self.union_memo.get(&key) {
            self.stats.union_hits += 1;
            return r;
        }
        self.stats.union_misses += 1;
        let (astart, alen) = self.spine_range(a);
        let (bstart, blen) = self.spine_range(b);
        let mut out: Vec<ChunkId> = Vec::with_capacity(alen.max(blen));
        let (mut i, mut j) = (0, 0);
        let mut same_a = true;
        let mut same_b = true;
        while i < alen && j < blen {
            let ac = self.spine_arena[astart + i];
            let bc = self.spine_arena[bstart + j];
            if ac == bc {
                self.stats.chunk_union_hits += 1;
                out.push(ac);
                i += 1;
                j += 1;
                continue;
            }
            let abase = self.chunks[ac as usize].0;
            let bbase = self.chunks[bc as usize].0;
            if abase < bbase {
                out.push(ac);
                same_b = false;
                i += 1;
            } else if abase > bbase {
                out.push(bc);
                same_a = false;
                j += 1;
            } else {
                let m = self.chunk_union(ac, bc);
                same_a &= m == ac;
                same_b &= m == bc;
                out.push(m);
                i += 1;
                j += 1;
            }
        }
        if i < alen {
            same_b = false;
            for k in i..alen {
                out.push(self.spine_arena[astart + k]);
            }
        }
        if j < blen {
            same_a = false;
            for k in j..blen {
                out.push(self.spine_arena[bstart + k]);
            }
        }
        let r = if same_a {
            a
        } else if same_b {
            b
        } else {
            self.intern_spine(&out)
        };
        self.union_memo.insert(key, r);
        r
    }

    /// Would `union(a, b)` differ from `a`? Answered from the memo when
    /// possible; falls back to one chunk-wise subset test (and records the
    /// memo on a negative answer) without ever materialising the union.
    pub fn union_would_change(&mut self, a: PtsId, b: PtsId) -> bool {
        if a == b || b == Self::EMPTY {
            self.stats.would_change_fast += 1;
            return false;
        }
        if a == Self::EMPTY {
            self.stats.would_change_fast += 1;
            return true;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if let Some(&r) = self.union_memo.get(&key) {
            self.stats.would_change_fast += 1;
            return r != a;
        }
        self.stats.would_change_slow += 1;
        if self.spine_is_superset(a, b) {
            // union(a, b) == a: remember it so the next ask is a hit.
            self.union_memo.insert(key, a);
            false
        } else {
            true
        }
    }

    /// The set `a \ b`, memoized on the ordered id pair.
    ///
    /// This is the difference-propagation primitive: a solver that
    /// remembers the id it last propagated along an edge (`b`) can ship
    /// only `diff(current, last)` on the next visit. Because edge values
    /// grow monotonically, the same `(a, b)` pairs recur across the
    /// frontier of every consumer of `a`, so the memo absorbs almost all
    /// repeat extractions.
    pub fn diff(&mut self, a: PtsId, b: PtsId) -> PtsId {
        self.subtract(a, b)
    }

    /// The set `a \ b`, memoized on the ordered id pair (see
    /// [`PtsStore::diff`]). Chunk-wise: shared handles vanish whole,
    /// chunks without a same-base counterpart are shared by handle.
    pub fn subtract(&mut self, a: PtsId, b: PtsId) -> PtsId {
        if a == Self::EMPTY || a == b {
            self.stats.diff_hits += 1;
            return Self::EMPTY;
        }
        if b == Self::EMPTY {
            self.stats.diff_hits += 1;
            return a;
        }
        if let Some(&r) = self.diff_memo.get(&(a, b)) {
            self.stats.diff_hits += 1;
            return r;
        }
        self.stats.diff_misses += 1;
        let (astart, alen) = self.spine_range(a);
        let (bstart, blen) = self.spine_range(b);
        let mut out: Vec<ChunkId> = Vec::with_capacity(alen);
        let (mut i, mut j) = (0, 0);
        let mut changed = false;
        while i < alen && j < blen {
            let ac = self.spine_arena[astart + i];
            let bc = self.spine_arena[bstart + j];
            if ac == bc {
                // Identical chunk: the whole chunk is removed.
                changed = true;
                i += 1;
                j += 1;
                continue;
            }
            let abase = self.chunks[ac as usize].0;
            let bbase = self.chunks[bc as usize].0;
            if abase < bbase {
                out.push(ac);
                i += 1;
            } else if abase > bbase {
                j += 1;
            } else {
                let aw = self.chunks[ac as usize].1;
                let bw = self.chunks[bc as usize].1;
                let dw = [aw[0] & !bw[0], aw[1] & !bw[1]];
                if dw == aw {
                    out.push(ac);
                } else {
                    changed = true;
                    if dw != [0, 0] {
                        let c = self.intern_chunk((abase, dw));
                        out.push(c);
                    }
                }
                i += 1;
                j += 1;
            }
        }
        for k in i..alen {
            out.push(self.spine_arena[astart + k]);
        }
        let r = if !changed { a } else { self.intern_spine(&out) };
        self.diff_memo.insert((a, b), r);
        r
    }

    /// The set `a ∩ b`, memoized on the unordered id pair.
    pub fn intersect(&mut self, a: PtsId, b: PtsId) -> PtsId {
        if a == b {
            return a;
        }
        if a == Self::EMPTY || b == Self::EMPTY {
            return Self::EMPTY;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if let Some(&r) = self.intersect_memo.get(&key) {
            return r;
        }
        let (astart, alen) = self.spine_range(a);
        let (bstart, blen) = self.spine_range(b);
        let mut out: Vec<ChunkId> = Vec::new();
        let (mut i, mut j) = (0, 0);
        let mut same_a = true;
        let mut same_b = true;
        while i < alen && j < blen {
            let ac = self.spine_arena[astart + i];
            let bc = self.spine_arena[bstart + j];
            if ac == bc {
                out.push(ac);
                i += 1;
                j += 1;
                continue;
            }
            let abase = self.chunks[ac as usize].0;
            let bbase = self.chunks[bc as usize].0;
            if abase < bbase {
                same_a = false;
                i += 1;
            } else if abase > bbase {
                same_b = false;
                j += 1;
            } else {
                let aw = self.chunks[ac as usize].1;
                let bw = self.chunks[bc as usize].1;
                let mw = [aw[0] & bw[0], aw[1] & bw[1]];
                same_a &= mw == aw;
                same_b &= mw == bw;
                if mw != [0, 0] {
                    let c = self.intern_chunk((abase, mw));
                    out.push(c);
                }
                i += 1;
                j += 1;
            }
        }
        same_a &= i == alen;
        same_b &= j == blen;
        let r = if same_a {
            a
        } else if same_b {
            b
        } else {
            self.intern_spine(&out)
        };
        self.intersect_memo.insert(key, r);
        r
    }

    /// Number of distinct sets interned (including the empty one).
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Returns `true` if only the empty set has been interned.
    pub fn is_empty(&self) -> bool {
        self.sets.len() <= 1
    }

    /// A snapshot of the store's counters, with the payload fields filled
    /// in from the current contents: `unique_set_bytes` is the chunked
    /// footprint (spine handles + shared chunk data), `flat_equiv_bytes`
    /// what the same sets would cost flat.
    pub fn stats(&self) -> PtsStoreStats {
        let mut s = self.stats;
        s.unique_sets = self.sets.len();
        s.unique_chunks = self.chunks.len();
        s.chunk_bytes = self.chunks.len() * CHUNK_FLAT_BYTES;
        s.unique_set_bytes =
            self.spine_arena.len() * std::mem::size_of::<ChunkId>() + s.chunk_bytes;
        s.flat_equiv_bytes = self.spine_arena.len() * CHUNK_FLAT_BYTES;
        s
    }
}

/// Iterator over the elements of an interned set, ascending.
pub struct SetIter<'s, I> {
    chunks: &'s [Chunk],
    spine: &'s [ChunkId],
    pos: usize,
    word_idx: usize,
    word: u64,
    primed: bool,
    _marker: PhantomData<I>,
}

impl<I: Idx> Iterator for SetIter<'_, I> {
    type Item = I;

    fn next(&mut self) -> Option<I> {
        loop {
            if !self.primed {
                if self.pos >= self.spine.len() {
                    return None;
                }
                self.word = self.chunks[self.spine[self.pos] as usize].1[0];
                self.word_idx = 0;
                self.primed = true;
            }
            if self.word != 0 {
                let bit = self.word.trailing_zeros();
                self.word &= self.word - 1;
                let base = self.chunks[self.spine[self.pos] as usize].0;
                return Some(I::from_index((base + self.word_idx as u32 * 64 + bit) as usize));
            }
            if self.word_idx == 0 {
                self.word_idx = 1;
                self.word = self.chunks[self.spine[self.pos] as usize].1[1];
            } else {
                self.pos += 1;
                self.primed = false;
            }
        }
    }
}

/// A flat read-back cache over the ids a finished result exposes.
///
/// Results hand out `&PointsToSet` at their API boundary; the chunked
/// store has no flat sets to lend. A `FlatReader` materialises each
/// distinct exposed id exactly once (ids sharing a canonical set share
/// the materialisation) and serves references from then on.
#[derive(Debug, Clone, Default)]
pub struct FlatReader<I: Idx> {
    map: HashMap<PtsId, PointsToSet<I>>,
}

impl<I: Idx> FlatReader<I> {
    /// Materialises each distinct id in `ids` from `store`.
    pub fn new(store: &PtsStore<I>, ids: impl IntoIterator<Item = PtsId>) -> Self {
        let mut map = HashMap::new();
        for id in ids {
            map.entry(id).or_insert_with(|| store.materialize(id));
        }
        FlatReader { map }
    }

    /// The flat set behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not in the set of ids the reader was built
    /// over.
    pub fn get(&self, id: PtsId) -> &PointsToSet<I> {
        &self.map[&id]
    }

    /// Heap bytes of the materialised flat sets.
    pub fn heap_bytes(&self) -> usize {
        self.map.values().map(|s| s.heap_bytes()).sum()
    }
}

/// Counters for one carry generation (see [`PtsCarry`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CarryStats {
    /// `carry` calls answered by the per-generation memo.
    pub memo_hits: usize,
    /// Sets materialised in the successor store.
    pub carried_sets: usize,
    /// Elements dropped because the element remap declined them.
    pub dropped_elems: usize,
}

/// Carries interned sets from one store into its successor epoch.
///
/// The element remap translates ids of the old index space into the new
/// one (or `None` to drop an element whose referent no longer exists).
/// Translations are memoized per carry generation, so state that shares
/// ids in the old store keeps sharing them in the successor.
#[derive(Debug, Default)]
pub struct PtsCarry {
    memo: HashMap<PtsId, PtsId>,
    /// Counters for this carry generation.
    pub stats: CarryStats,
}

impl PtsCarry {
    /// Creates an empty carry for one old-store → new-store generation.
    pub fn new() -> Self {
        PtsCarry::default()
    }

    /// Interns the image of `old`'s set `id` under `map` into `into`.
    pub fn carry<I: Idx, J: Idx>(
        &mut self,
        old: &PtsStore<I>,
        into: &mut PtsStore<J>,
        id: PtsId,
        mut map: impl FnMut(I) -> Option<J>,
    ) -> PtsId {
        if let Some(&r) = self.memo.get(&id) {
            self.stats.memo_hits += 1;
            return r;
        }
        let mut set = PointsToSet::new();
        for elem in old.iter_set(id) {
            match map(elem) {
                Some(e) => {
                    set.insert(e);
                }
                None => self.stats.dropped_elems += 1,
            }
        }
        let r = into.intern(&set);
        self.stats.carried_sets += 1;
        self.memo.insert(id, r);
        r
    }
}

/// A read-only view of a [`PtsStore`] for one parallel worker, plus the
/// worker's locally materialised results.
///
/// Workers never mutate the shared store: each resolves ids through the
/// scratch, unions into private owned sets, and records `(slot, set)`
/// pairs for slots that grew. The sequential barrier then interns every
/// recorded set in a fixed order (worker-group order, ascending slot
/// within a group), so id assignment — and therefore every downstream
/// result — is independent of the worker count.
#[derive(Debug)]
pub struct PtsScratch<'s, I: Idx> {
    store: &'s PtsStore<I>,
    /// Flat sets materialised by this worker, memoized per id so repeat
    /// resolutions of hot ids pay the chunk decode once.
    resolved: HashMap<PtsId, PointsToSet<I>>,
    changed: Vec<(usize, PointsToSet<I>)>,
}

impl<'s, I: Idx> PtsScratch<'s, I> {
    /// Creates a scratch view over `store`.
    pub fn new(store: &'s PtsStore<I>) -> Self {
        PtsScratch { store, resolved: HashMap::new(), changed: Vec::new() }
    }

    /// Resolves an id to a flat set, materialising (and caching) it on
    /// first use.
    pub fn resolve(&mut self, id: PtsId) -> &PointsToSet<I> {
        self.resolved.entry(id).or_insert_with(|| self.store.materialize(id))
    }

    /// Unions `adds` into the set behind `base`; if anything grew,
    /// records the materialised result for `slot` and returns `true`.
    pub fn union_into<'a>(
        &mut self,
        slot: usize,
        base: PtsId,
        adds: impl IntoIterator<Item = &'a PointsToSet<I>>,
    ) -> bool
    where
        I: 'a,
    {
        let mut set = self.store.materialize(base);
        let mut grew = false;
        for add in adds {
            grew |= set.union_with(add);
        }
        if grew {
            self.changed.push((slot, set));
        }
        grew
    }

    /// The recorded `(slot, set)` pairs, in recording order.
    pub fn into_changed(self) -> Vec<(usize, PointsToSet<I>)> {
        self.changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsfs_testkit::gen;

    crate::define_index!(TObj, "t");

    fn sing(store: &mut PtsStore<TObj>, e: u32) -> PtsId {
        store.singleton(TObj::new(e))
    }

    #[test]
    fn identity_and_idempotence() {
        let mut s = PtsStore::<TObj>::new();
        let a = sing(&mut s, 7);
        assert_eq!(s.union(a, a), a);
        assert_eq!(s.union(a, PtsStore::<TObj>::EMPTY), a);
        assert_eq!(s.union(PtsStore::<TObj>::EMPTY, a), a);
        assert_eq!(
            s.union(PtsStore::<TObj>::EMPTY, PtsStore::<TObj>::EMPTY),
            PtsStore::<TObj>::EMPTY
        );
        assert_eq!(s.stats().union_shortcuts, 4);
    }

    #[test]
    fn union_memoizes_and_shortcuts() {
        let mut s = PtsStore::<TObj>::new();
        let a = sing(&mut s, 1);
        let b = sing(&mut s, 2);
        let ab = s.union(a, b);
        assert_eq!(s.stats().union_misses, 1);
        assert_eq!(s.union(b, a), ab, "commutative via unordered key");
        assert_eq!(s.stats().union_hits, 1, "second union hit the memo");
        assert_eq!(s.union(ab, b), ab, "superset short-circuits to a");
        assert_eq!(s.len(), 4); // ∅, {1}, {2}, {1,2}
    }

    #[test]
    fn insert_memoizes() {
        let mut s = PtsStore::<TObj>::new();
        let a = sing(&mut s, 3);
        let a5 = s.insert(a, TObj::new(5));
        assert!(s.contains(a5, TObj::new(5)) && s.contains(a5, TObj::new(3)));
        assert_eq!(s.insert(a, TObj::new(5)), a5);
        assert_eq!(s.insert(a5, TObj::new(5)), a5, "already present");
        let st = s.stats();
        assert!(st.insert_hits >= 2);
    }

    #[test]
    fn would_change_agrees_with_union() {
        let mut s = PtsStore::<TObj>::new();
        let a = sing(&mut s, 1);
        let b = sing(&mut s, 2);
        let ab = s.union(a, b);
        assert!(!s.union_would_change(ab, a));
        assert!(!s.union_would_change(ab, b));
        assert!(s.union_would_change(a, b));
        assert!(!s.union_would_change(a, PtsStore::<TObj>::EMPTY));
        assert!(s.union_would_change(PtsStore::<TObj>::EMPTY, a));
        // The negative answer was memoized as union(ab, a) == ab.
        assert_eq!(s.union(ab, a), ab);
    }

    #[test]
    fn subtract_and_intersect() {
        let mut s = PtsStore::<TObj>::new();
        let a = sing(&mut s, 1);
        let b = sing(&mut s, 2);
        let ab = s.union(a, b);
        assert_eq!(s.subtract(ab, a), b);
        assert_eq!(s.subtract(ab, b), a);
        assert_eq!(s.subtract(a, ab), PtsStore::<TObj>::EMPTY);
        assert_eq!(s.subtract(a, b), a, "disjoint: a is unchanged");
        assert_eq!(s.intersect(ab, a), a);
        assert_eq!(s.intersect(a, b), PtsStore::<TObj>::EMPTY);
        assert_eq!(s.intersect(ab, ab), ab);
    }

    #[test]
    fn chunk_sharing_across_similar_sets() {
        let mut s = PtsStore::<TObj>::new();
        // Two large sets sharing their first chunk exactly.
        let mut x = PointsToSet::new();
        let mut y = PointsToSet::new();
        for e in 0..100 {
            x.insert(TObj::new(e));
            y.insert(TObj::new(e));
        }
        x.insert(TObj::new(200));
        y.insert(TObj::new(300));
        let ix = s.intern(&x);
        let iy = s.intern(&y);
        assert_ne!(ix, iy);
        let st = s.stats();
        // 4 chunk instances (2 spines x 2 chunks) but only 3 distinct
        // chunks: the dense low chunk is shared.
        assert_eq!(st.flat_equiv_bytes, 4 * 24);
        assert_eq!(st.unique_chunks, 3);
        assert!(st.unique_set_bytes < st.flat_equiv_bytes);
        // Union of the two shares the low chunk by handle.
        let before = s.stats().chunk_union_hits;
        let u = s.union(ix, iy);
        assert_eq!(s.set_len(u), 102);
        assert!(s.stats().chunk_union_hits > before, "shared handle short-circuited");
    }

    #[test]
    fn accessors_match_materialize() {
        let mut s = PtsStore::<TObj>::new();
        let elems = [0u32, 1, 63, 64, 127, 128, 200, 1000];
        let set: PointsToSet<TObj> = elems.iter().map(|&e| TObj::new(e)).collect();
        let id = s.intern(&set);
        assert_eq!(s.materialize(id), set);
        assert_eq!(s.set_len(id), elems.len());
        assert_eq!(
            s.iter_set(id).collect::<Vec<_>>(),
            elems.iter().map(|&e| TObj::new(e)).collect::<Vec<_>>()
        );
        for &e in &elems {
            assert!(s.contains(id, TObj::new(e)));
        }
        assert!(!s.contains(id, TObj::new(2)));
        assert!(!s.contains(id, TObj::new(129)));
        assert_eq!(s.as_singleton(id), None);
        let one = s.singleton(TObj::new(77));
        assert_eq!(s.as_singleton(one), Some(TObj::new(77)));
        assert_eq!(s.flat_bytes(id), set.raw().block_count() * 24);
        assert_eq!(s.lookup(&set), Some(id));
        assert_eq!(s.lookup(&PointsToSet::singleton(TObj::new(9999))), None);
    }

    #[test]
    fn scratch_records_only_growth() {
        let mut s = PtsStore::<TObj>::new();
        let a = sing(&mut s, 1);
        let b = sing(&mut s, 2);
        let bset = s.materialize(b);
        let aset = s.materialize(a);
        let mut scratch = PtsScratch::new(&s);
        assert!(scratch.union_into(0, a, [&bset]));
        assert!(!scratch.union_into(1, a, [&aset]), "no growth, not recorded");
        let changed = scratch.into_changed();
        assert_eq!(changed.len(), 1);
        assert_eq!(changed[0].0, 0);
        assert_eq!(changed[0].1.len(), 2);
    }

    #[test]
    fn carry_remaps_and_memoizes_across_epochs() {
        let mut old = PtsStore::<TObj>::new();
        let a = sing(&mut old, 1);
        let b = sing(&mut old, 2);
        let ab = old.union(a, b);
        assert_eq!(old.epoch(), 0);

        let mut new = old.next_epoch();
        assert_eq!(new.epoch(), 1);
        let mut carry = PtsCarry::new();
        // Shift element 1 → 5, drop element 2.
        let map = |e: TObj| match e.index() {
            1 => Some(TObj::new(5)),
            _ => None,
        };
        let a2 = carry.carry(&old, &mut new, a, map);
        let ab2 = carry.carry(&old, &mut new, ab, map);
        assert_eq!(new.iter_set(a2).collect::<Vec<_>>(), vec![TObj::new(5)]);
        assert_eq!(ab2, a2, "dropped element collapses {{1,2}} onto {{5}}");
        assert_eq!(carry.carry(&old, &mut new, a, map), a2, "memo hit");
        assert_eq!(carry.stats.memo_hits, 1);
        assert_eq!(carry.stats.carried_sets, 2);
        assert_eq!(carry.stats.dropped_elems, 1);
        // EMPTY is id 0 in every epoch.
        let e = carry.carry(&old, &mut new, PtsStore::<TObj>::EMPTY, map);
        assert_eq!(e, PtsStore::<TObj>::EMPTY);
    }

    /// The memoized chunked algebra agrees with direct flat set
    /// operations — the extensional-equality property suite.
    #[test]
    fn matches_direct_set_ops() {
        vsfs_testkit::check("ptstore::matches_direct_set_ops", |rng| {
            let ops = gen::vec_with(rng, 1..48, |r| {
                (
                    r.gen_range(0u32..600),
                    r.gen_range(0usize..8),
                    r.gen_range(0usize..8),
                    r.gen_range(0u32..4),
                )
            });
            let mut store = PtsStore::<TObj>::new();
            let mut ids: Vec<PtsId> = vec![PtsStore::<TObj>::EMPTY];
            let mut sets: Vec<PointsToSet<TObj>> = vec![PointsToSet::new()];
            for (elem, i, j, op) in ops {
                let (i, j) = (i % ids.len(), j % ids.len());
                let (id, set) = match op {
                    0 => {
                        let mut u = sets[i].clone();
                        u.union_with(&sets[j]);
                        (store.union(ids[i], ids[j]), u)
                    }
                    1 => {
                        let mut u = sets[i].clone();
                        u.insert(TObj::new(elem));
                        (store.insert(ids[i], TObj::new(elem)), u)
                    }
                    2 => {
                        let mut d = sets[i].clone();
                        d.subtract(&sets[j]);
                        (store.subtract(ids[i], ids[j]), d)
                    }
                    _ => {
                        let mut x = sets[i].clone();
                        x.intersect_with(&sets[j]);
                        (store.intersect(ids[i], ids[j]), x)
                    }
                };
                assert_eq!(store.materialize(id), set);
                assert_eq!(store.set_len(id), set.len());
                assert_eq!(store.iter_set(id).collect::<Vec<_>>(), set.iter().collect::<Vec<_>>());
                assert_eq!(store.as_singleton(id), set.as_singleton());
                assert!(store.contains(id, TObj::new(elem)) == set.contains(TObj::new(elem)));
                // would_change must agree with the realised union.
                let grown = store.union(ids[i], ids[j]) != ids[i];
                assert_eq!(store.union_would_change(ids[i], ids[j]), grown);
                ids.push(id);
                sets.push(set);
            }
            // Canonical: equal sets share an id.
            for (id, set) in ids.iter().zip(&sets) {
                assert_eq!(store.lookup(set), Some(*id));
            }
        });
    }
}

//! Hash-consed points-to sets with memoized set algebra.
//!
//! The MDE line of work (PAPERS.md) observes that a flow-sensitive
//! pointer analysis is dominated by *repetition*: most `(node, object)`
//! slots hold one of a few distinct sets, and the same unions are
//! recomputed millions of times. This module deduplicates both:
//!
//! * every distinct [`PointsToSet`] is *interned* once and referred to by
//!   a dense [`PtsId`] — equality and assignment become `u32` compares;
//! * the algebra over ids (`union`, `insert`, `subtract`, `intersect`)
//!   is memoized on id pairs, so repeating an operation on operands seen
//!   before is a single hash lookup that touches no set data;
//! * [`PtsStore::union_would_change`] answers the solvers' hottest
//!   question — "would propagating `b` into `a` grow it?" — without
//!   materialising the union.
//!
//! Ids are assigned in first-intern order, so any solver that performs
//! store operations in a deterministic order gets deterministic ids; the
//! parallel wave phase keeps this property by confining workers to
//! read-only [`PtsScratch`]es whose materialised results are interned at
//! the sequential barrier in a fixed order (see DESIGN.md §6).
//!
//! # Examples
//!
//! ```
//! use vsfs_adt::{define_index, PtsStore, PointsToSet};
//!
//! define_index!(ObjId, "o");
//! let mut store = PtsStore::<ObjId>::new();
//! let a = store.insert(PtsStore::<ObjId>::EMPTY, ObjId::new(1));
//! let b = store.insert(PtsStore::<ObjId>::EMPTY, ObjId::new(2));
//! let ab = store.union(a, b);
//! assert_eq!(store.union(b, a), ab);          // memoized, order-insensitive
//! assert_eq!(store.union(ab, a), ab);         // absorption
//! assert!(!store.union_would_change(ab, b));  // subset: no growth
//! assert_eq!(store.get(ab).len(), 2);
//! ```

use crate::index::Idx;
use crate::PointsToSet;
use std::collections::HashMap;

crate::define_index!(
    /// A dense handle to an interned canonical points-to set.
    ///
    /// `PtsId(0)` is always the empty set ([`PtsStore::EMPTY`]).
    PtsId,
    "ps"
);

/// Counters describing a [`PtsStore`]'s effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PtsStoreStats {
    /// Distinct canonical sets interned (including the empty set).
    pub unique_sets: usize,
    /// Approximate heap bytes held by the canonical sets.
    pub unique_set_bytes: usize,
    /// `union` calls answered by an algebraic shortcut (`a ∪ a`,
    /// `a ∪ ∅`) without touching the memo or any set data.
    pub union_shortcuts: usize,
    /// `union` calls answered by the memo table.
    pub union_hits: usize,
    /// `union` calls that had to consult set data (subset test or a
    /// fresh union) — the memo misses.
    pub union_misses: usize,
    /// `insert` calls answered by the memo table or a containment check.
    pub insert_hits: usize,
    /// `insert` calls that materialised a new set.
    pub insert_misses: usize,
    /// `union_would_change` calls answered without touching set data
    /// (shortcut or memo).
    pub would_change_fast: usize,
    /// `union_would_change` calls that fell back to a subset test.
    pub would_change_slow: usize,
    /// `diff`/`subtract` calls answered by a shortcut or the memo table.
    pub diff_hits: usize,
    /// `diff`/`subtract` calls that had to consult set data.
    pub diff_misses: usize,
}

impl PtsStoreStats {
    /// Fraction of non-shortcut `union` calls served by the memo.
    pub fn union_hit_rate(&self) -> f64 {
        let total = self.union_hits + self.union_misses;
        if total == 0 {
            0.0
        } else {
            self.union_hits as f64 / total as f64
        }
    }
}

/// Interns canonical points-to sets and memoizes the algebra over them.
///
/// One store is shared by every stage of a solver run: identical sets
/// across Andersen's `pts`/`prop`, SFS `IN`/`OUT` entries, VSFS version
/// slots, and top-level variables are stored once.
#[derive(Debug, Clone, Default)]
pub struct PtsStore<I: Idx> {
    sets: Vec<PointsToSet<I>>,
    ids: HashMap<PointsToSet<I>, PtsId>,
    union_memo: HashMap<(PtsId, PtsId), PtsId>,
    insert_memo: HashMap<(PtsId, u32), PtsId>,
    diff_memo: HashMap<(PtsId, PtsId), PtsId>,
    intersect_memo: HashMap<(PtsId, PtsId), PtsId>,
    stats: PtsStoreStats,
    epoch: u64,
}

impl<I: Idx> PtsStore<I> {
    /// The id of the empty set.
    pub const EMPTY: PtsId = PtsId::new(0);

    /// Creates a store pre-seeded with the empty set at id 0.
    pub fn new() -> Self {
        let mut s = PtsStore {
            sets: Vec::new(),
            ids: HashMap::new(),
            union_memo: HashMap::new(),
            insert_memo: HashMap::new(),
            diff_memo: HashMap::new(),
            intersect_memo: HashMap::new(),
            stats: PtsStoreStats::default(),
            epoch: 0,
        };
        let e = s.intern(&PointsToSet::new());
        debug_assert_eq!(e, Self::EMPTY);
        s
    }

    /// The store's carry generation (0 for a fresh store).
    ///
    /// An incremental solver does not mutate a resident store in place:
    /// after an edit it starts from [`PtsStore::next_epoch`] and carries
    /// the surviving sets over with a [`PtsCarry`], so sets reachable only
    /// from invalidated state are dropped wholesale rather than leaked
    /// across requests.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// An empty successor store whose epoch is one past this store's.
    pub fn next_epoch(&self) -> PtsStore<I> {
        let mut s = PtsStore::new();
        s.epoch = self.epoch + 1;
        s
    }

    /// The canonical set behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this store.
    pub fn get(&self, id: PtsId) -> &PointsToSet<I> {
        &self.sets[id.index()]
    }

    /// Returns the id for `set`, interning a copy if unseen.
    pub fn intern(&mut self, set: &PointsToSet<I>) -> PtsId {
        if let Some(&id) = self.ids.get(set) {
            return id;
        }
        let id = PtsId::from_index(self.sets.len());
        self.sets.push(set.clone());
        self.ids.insert(set.clone(), id);
        id
    }

    /// Looks up the id of `set` without interning it.
    pub fn lookup(&self, set: &PointsToSet<I>) -> Option<PtsId> {
        self.ids.get(set).copied()
    }

    /// The set containing exactly `elem`.
    pub fn singleton(&mut self, elem: I) -> PtsId {
        self.insert(Self::EMPTY, elem)
    }

    /// The set `a ∪ {elem}`, memoized on `(a, elem)`.
    pub fn insert(&mut self, a: PtsId, elem: I) -> PtsId {
        let key = (a, elem.index() as u32);
        if let Some(&r) = self.insert_memo.get(&key) {
            self.stats.insert_hits += 1;
            return r;
        }
        let r = if self.sets[a.index()].contains(elem) {
            self.stats.insert_hits += 1;
            a
        } else {
            self.stats.insert_misses += 1;
            let mut s = self.sets[a.index()].clone();
            s.insert(elem);
            self.intern(&s)
        };
        self.insert_memo.insert(key, r);
        r
    }

    /// The set `a ∪ b`, memoized on the unordered id pair.
    pub fn union(&mut self, a: PtsId, b: PtsId) -> PtsId {
        if a == b || b == Self::EMPTY {
            self.stats.union_shortcuts += 1;
            return a;
        }
        if a == Self::EMPTY {
            self.stats.union_shortcuts += 1;
            return b;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if let Some(&r) = self.union_memo.get(&key) {
            self.stats.union_hits += 1;
            return r;
        }
        self.stats.union_misses += 1;
        // Subset shortcuts before allocating a union.
        let r = if self.sets[a.index()].is_superset(&self.sets[b.index()]) {
            a
        } else if self.sets[b.index()].is_superset(&self.sets[a.index()]) {
            b
        } else {
            let mut u = self.sets[a.index()].clone();
            u.union_with(&self.sets[b.index()]);
            self.intern(&u)
        };
        self.union_memo.insert(key, r);
        r
    }

    /// Would `union(a, b)` differ from `a`? Answered from the memo when
    /// possible; falls back to one subset test (and records the memo on a
    /// negative answer) without ever materialising the union.
    pub fn union_would_change(&mut self, a: PtsId, b: PtsId) -> bool {
        if a == b || b == Self::EMPTY {
            self.stats.would_change_fast += 1;
            return false;
        }
        if a == Self::EMPTY {
            self.stats.would_change_fast += 1;
            return true;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if let Some(&r) = self.union_memo.get(&key) {
            self.stats.would_change_fast += 1;
            return r != a;
        }
        self.stats.would_change_slow += 1;
        if self.sets[a.index()].is_superset(&self.sets[b.index()]) {
            // union(a, b) == a: remember it so the next ask is a hit.
            self.union_memo.insert(key, a);
            false
        } else {
            true
        }
    }

    /// The set `a \ b`, memoized on the ordered id pair.
    ///
    /// This is the difference-propagation primitive: a solver that
    /// remembers the id it last propagated along an edge (`b`) can ship
    /// only `diff(current, last)` on the next visit. Because edge values
    /// grow monotonically, the same `(a, b)` pairs recur across the
    /// frontier of every consumer of `a`, so the memo absorbs almost all
    /// repeat extractions.
    pub fn diff(&mut self, a: PtsId, b: PtsId) -> PtsId {
        self.subtract(a, b)
    }

    /// The set `a \ b`, memoized on the ordered id pair (see
    /// [`PtsStore::diff`]).
    pub fn subtract(&mut self, a: PtsId, b: PtsId) -> PtsId {
        if a == Self::EMPTY || a == b {
            self.stats.diff_hits += 1;
            return Self::EMPTY;
        }
        if b == Self::EMPTY {
            self.stats.diff_hits += 1;
            return a;
        }
        if let Some(&r) = self.diff_memo.get(&(a, b)) {
            self.stats.diff_hits += 1;
            return r;
        }
        self.stats.diff_misses += 1;
        let r = if self.sets[a.index()].is_disjoint(&self.sets[b.index()]) {
            a
        } else {
            let mut d = self.sets[a.index()].clone();
            d.subtract(&self.sets[b.index()]);
            self.intern(&d)
        };
        self.diff_memo.insert((a, b), r);
        r
    }

    /// The set `a ∩ b`, memoized on the unordered id pair.
    pub fn intersect(&mut self, a: PtsId, b: PtsId) -> PtsId {
        if a == b {
            return a;
        }
        if a == Self::EMPTY || b == Self::EMPTY {
            return Self::EMPTY;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if let Some(&r) = self.intersect_memo.get(&key) {
            return r;
        }
        let r = if self.sets[b.index()].is_superset(&self.sets[a.index()]) {
            a
        } else if self.sets[a.index()].is_superset(&self.sets[b.index()]) {
            b
        } else {
            let mut x = self.sets[a.index()].clone();
            x.intersect_with(&self.sets[b.index()]);
            self.intern(&x)
        };
        self.intersect_memo.insert(key, r);
        r
    }

    /// Number of distinct sets interned (including the empty one).
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Returns `true` if only the empty set has been interned.
    pub fn is_empty(&self) -> bool {
        self.sets.len() <= 1
    }

    /// A snapshot of the store's counters, with `unique_sets` and
    /// `unique_set_bytes` filled in from the current contents.
    pub fn stats(&self) -> PtsStoreStats {
        let mut s = self.stats;
        s.unique_sets = self.sets.len();
        s.unique_set_bytes = self.sets.iter().map(PointsToSet::heap_bytes).sum();
        s
    }
}

/// Counters for one carry generation (see [`PtsCarry`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CarryStats {
    /// `carry` calls answered by the per-generation memo.
    pub memo_hits: usize,
    /// Sets materialised in the successor store.
    pub carried_sets: usize,
    /// Elements dropped because the element remap declined them.
    pub dropped_elems: usize,
}

/// Carries interned sets from one store into its successor epoch.
///
/// The element remap translates ids of the old index space into the new
/// one (or `None` to drop an element whose referent no longer exists).
/// Translations are memoized per carry generation, so state that shares
/// ids in the old store keeps sharing them in the successor.
#[derive(Debug, Default)]
pub struct PtsCarry {
    memo: HashMap<PtsId, PtsId>,
    /// Counters for this carry generation.
    pub stats: CarryStats,
}

impl PtsCarry {
    /// Creates an empty carry for one old-store → new-store generation.
    pub fn new() -> Self {
        PtsCarry::default()
    }

    /// Interns the image of `old`'s set `id` under `map` into `into`.
    pub fn carry<I: Idx, J: Idx>(
        &mut self,
        old: &PtsStore<I>,
        into: &mut PtsStore<J>,
        id: PtsId,
        mut map: impl FnMut(I) -> Option<J>,
    ) -> PtsId {
        if let Some(&r) = self.memo.get(&id) {
            self.stats.memo_hits += 1;
            return r;
        }
        let mut set = PointsToSet::new();
        for elem in old.get(id).iter() {
            match map(elem) {
                Some(e) => {
                    set.insert(e);
                }
                None => self.stats.dropped_elems += 1,
            }
        }
        let r = into.intern(&set);
        self.stats.carried_sets += 1;
        self.memo.insert(id, r);
        r
    }
}

/// A read-only view of a [`PtsStore`] for one parallel worker, plus the
/// worker's locally materialised results.
///
/// Workers never mutate the shared store: each resolves ids through the
/// scratch, unions into private owned sets, and records `(slot, set)`
/// pairs for slots that grew. The sequential barrier then interns every
/// recorded set in a fixed order (worker-group order, ascending slot
/// within a group), so id assignment — and therefore every downstream
/// result — is independent of the worker count.
#[derive(Debug)]
pub struct PtsScratch<'s, I: Idx> {
    store: &'s PtsStore<I>,
    changed: Vec<(usize, PointsToSet<I>)>,
}

impl<'s, I: Idx> PtsScratch<'s, I> {
    /// Creates a scratch view over `store`.
    pub fn new(store: &'s PtsStore<I>) -> Self {
        PtsScratch { store, changed: Vec::new() }
    }

    /// Resolves an id through the shared store.
    pub fn resolve(&self, id: PtsId) -> &'s PointsToSet<I> {
        self.store.get(id)
    }

    /// Unions `adds` into the set behind `base`; if anything grew,
    /// records the materialised result for `slot` and returns `true`.
    pub fn union_into<'a>(
        &mut self,
        slot: usize,
        base: PtsId,
        adds: impl IntoIterator<Item = &'a PointsToSet<I>>,
    ) -> bool
    where
        I: 'a,
    {
        let mut set = self.store.get(base).clone();
        let mut grew = false;
        for add in adds {
            grew |= set.union_with(add);
        }
        if grew {
            self.changed.push((slot, set));
        }
        grew
    }

    /// The recorded `(slot, set)` pairs, in recording order.
    pub fn into_changed(self) -> Vec<(usize, PointsToSet<I>)> {
        self.changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsfs_testkit::gen;

    crate::define_index!(TObj, "t");

    fn sing(store: &mut PtsStore<TObj>, e: u32) -> PtsId {
        store.singleton(TObj::new(e))
    }

    #[test]
    fn identity_and_idempotence() {
        let mut s = PtsStore::<TObj>::new();
        let a = sing(&mut s, 7);
        assert_eq!(s.union(a, a), a);
        assert_eq!(s.union(a, PtsStore::<TObj>::EMPTY), a);
        assert_eq!(s.union(PtsStore::<TObj>::EMPTY, a), a);
        assert_eq!(
            s.union(PtsStore::<TObj>::EMPTY, PtsStore::<TObj>::EMPTY),
            PtsStore::<TObj>::EMPTY
        );
        assert_eq!(s.stats().union_shortcuts, 4);
    }

    #[test]
    fn union_memoizes_and_shortcuts() {
        let mut s = PtsStore::<TObj>::new();
        let a = sing(&mut s, 1);
        let b = sing(&mut s, 2);
        let ab = s.union(a, b);
        assert_eq!(s.stats().union_misses, 1);
        assert_eq!(s.union(b, a), ab, "commutative via unordered key");
        assert_eq!(s.stats().union_hits, 1, "second union hit the memo");
        assert_eq!(s.union(ab, b), ab, "superset shortcut");
        assert_eq!(s.len(), 4); // ∅, {1}, {2}, {1,2}
    }

    #[test]
    fn insert_memoizes() {
        let mut s = PtsStore::<TObj>::new();
        let a = sing(&mut s, 3);
        let a5 = s.insert(a, TObj::new(5));
        assert!(s.get(a5).contains(TObj::new(5)) && s.get(a5).contains(TObj::new(3)));
        assert_eq!(s.insert(a, TObj::new(5)), a5);
        assert_eq!(s.insert(a5, TObj::new(5)), a5, "already present");
        let st = s.stats();
        assert!(st.insert_hits >= 2);
    }

    #[test]
    fn would_change_agrees_with_union() {
        let mut s = PtsStore::<TObj>::new();
        let a = sing(&mut s, 1);
        let b = sing(&mut s, 2);
        let ab = s.union(a, b);
        assert!(!s.union_would_change(ab, a));
        assert!(!s.union_would_change(ab, b));
        assert!(s.union_would_change(a, b));
        assert!(!s.union_would_change(a, PtsStore::<TObj>::EMPTY));
        assert!(s.union_would_change(PtsStore::<TObj>::EMPTY, a));
        // The negative answer was memoized as union(ab, a) == ab.
        assert_eq!(s.union(ab, a), ab);
    }

    #[test]
    fn subtract_and_intersect() {
        let mut s = PtsStore::<TObj>::new();
        let a = sing(&mut s, 1);
        let b = sing(&mut s, 2);
        let ab = s.union(a, b);
        assert_eq!(s.subtract(ab, a), b);
        assert_eq!(s.subtract(ab, b), a);
        assert_eq!(s.subtract(a, ab), PtsStore::<TObj>::EMPTY);
        assert_eq!(s.subtract(a, b), a, "disjoint shortcut");
        assert_eq!(s.intersect(ab, a), a);
        assert_eq!(s.intersect(a, b), PtsStore::<TObj>::EMPTY);
        assert_eq!(s.intersect(ab, ab), ab);
    }

    #[test]
    fn scratch_records_only_growth() {
        let mut s = PtsStore::<TObj>::new();
        let a = sing(&mut s, 1);
        let b = sing(&mut s, 2);
        let bset = s.get(b).clone();
        let aset = s.get(a).clone();
        let mut scratch = PtsScratch::new(&s);
        assert!(scratch.union_into(0, a, [&bset]));
        assert!(!scratch.union_into(1, a, [&aset]), "no growth, not recorded");
        let changed = scratch.into_changed();
        assert_eq!(changed.len(), 1);
        assert_eq!(changed[0].0, 0);
        assert_eq!(changed[0].1.len(), 2);
    }

    #[test]
    fn carry_remaps_and_memoizes_across_epochs() {
        let mut old = PtsStore::<TObj>::new();
        let a = sing(&mut old, 1);
        let b = sing(&mut old, 2);
        let ab = old.union(a, b);
        assert_eq!(old.epoch(), 0);

        let mut new = old.next_epoch();
        assert_eq!(new.epoch(), 1);
        let mut carry = PtsCarry::new();
        // Shift element 1 → 5, drop element 2.
        let map = |e: TObj| match e.index() {
            1 => Some(TObj::new(5)),
            _ => None,
        };
        let a2 = carry.carry(&old, &mut new, a, map);
        let ab2 = carry.carry(&old, &mut new, ab, map);
        assert_eq!(new.get(a2).iter().collect::<Vec<_>>(), vec![TObj::new(5)]);
        assert_eq!(ab2, a2, "dropped element collapses {{1,2}} onto {{5}}");
        assert_eq!(carry.carry(&old, &mut new, a, map), a2, "memo hit");
        assert_eq!(carry.stats.memo_hits, 1);
        assert_eq!(carry.stats.carried_sets, 2);
        assert_eq!(carry.stats.dropped_elems, 1);
        // EMPTY is id 0 in every epoch.
        let e = carry.carry(&old, &mut new, PtsStore::<TObj>::EMPTY, map);
        assert_eq!(e, PtsStore::<TObj>::EMPTY);
    }

    /// The memoized algebra agrees with direct set operations.
    #[test]
    fn matches_direct_set_ops() {
        vsfs_testkit::check("ptstore::matches_direct_set_ops", |rng| {
            let ops = gen::vec_with(rng, 1..48, |r| {
                (
                    r.gen_range(0u32..64),
                    r.gen_range(0usize..8),
                    r.gen_range(0usize..8),
                    r.gen_range(0u32..4),
                )
            });
            let mut store = PtsStore::<TObj>::new();
            let mut ids: Vec<PtsId> = vec![PtsStore::<TObj>::EMPTY];
            let mut sets: Vec<PointsToSet<TObj>> = vec![PointsToSet::new()];
            for (elem, i, j, op) in ops {
                let (i, j) = (i % ids.len(), j % ids.len());
                let (id, set) = match op {
                    0 => {
                        let mut u = sets[i].clone();
                        u.union_with(&sets[j]);
                        (store.union(ids[i], ids[j]), u)
                    }
                    1 => {
                        let mut u = sets[i].clone();
                        u.insert(TObj::new(elem));
                        (store.insert(ids[i], TObj::new(elem)), u)
                    }
                    2 => {
                        let mut d = sets[i].clone();
                        d.subtract(&sets[j]);
                        (store.subtract(ids[i], ids[j]), d)
                    }
                    _ => {
                        let mut x = sets[i].clone();
                        x.intersect_with(&sets[j]);
                        (store.intersect(ids[i], ids[j]), x)
                    }
                };
                assert_eq!(store.get(id), &set);
                // would_change must agree with the realised union.
                let grown = store.union(ids[i], ids[j]) != ids[i];
                assert_eq!(store.union_would_change(ids[i], ids[j]), grown);
                ids.push(id);
                sets.push(set);
            }
            // Canonical: equal sets share an id.
            for (id, set) in ids.iter().zip(&sets) {
                assert_eq!(store.lookup(set), Some(*id));
            }
        });
    }
}

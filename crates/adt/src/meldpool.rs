//! Hash-consed meld labels with memoized melds.
//!
//! The paper closes Section V-B observing that versioning "could perhaps
//! be further reduced by designing a data structure specifically catered
//! to versioning rather than using one off-the-shelf (LLVM's
//! `SparseBitVector`)". This module is one such design:
//!
//! * every distinct label (set of prelabels) is *interned* once and
//!   referred to by a dense [`LabelId`];
//! * the meld of two labels is computed at most once — a memo table maps
//!   the (unordered) pair of ids to the result id, so repeated melds of
//!   the same operands (extremely common: meld labelling keeps combining
//!   the same few store labels) are O(1) lookups;
//! * algebraic shortcuts (`a ⊙ a = a`, `a ⊙ ε = a`, and melding into a
//!   known superset) avoid touching set data entirely.
//!
//! Used by the `ablations` benchmark to quantify the idea against plain
//! sparse bit vectors.

use crate::sbv::SparseBitVector;
use std::collections::HashMap;

/// A dense id of an interned label.
pub type LabelId = u32;

/// An interning pool with memoized melds.
///
/// # Examples
///
/// ```
/// use vsfs_adt::meldpool::MeldPool;
///
/// let mut pool = MeldPool::new();
/// let a = pool.singleton(1);
/// let b = pool.singleton(2);
/// let ab = pool.meld(a, b);
/// assert_eq!(pool.meld(b, a), ab);      // memoized, order-insensitive
/// assert_eq!(pool.meld(ab, a), ab);     // absorption
/// assert_eq!(pool.meld(ab, MeldPool::EMPTY), ab); // identity
/// assert_eq!(pool.set(ab).iter().collect::<Vec<_>>(), vec![1, 2]);
/// ```
#[derive(Debug, Default)]
pub struct MeldPool {
    sets: Vec<SparseBitVector>,
    ids: HashMap<SparseBitVector, LabelId>,
    memo: HashMap<(LabelId, LabelId), LabelId>,
}

impl MeldPool {
    /// The id of the identity label `ε` (the empty set).
    pub const EMPTY: LabelId = 0;

    /// Creates a pool pre-seeded with `ε`.
    pub fn new() -> Self {
        let mut p = MeldPool::default();
        let e = p.intern(SparseBitVector::new());
        debug_assert_eq!(e, Self::EMPTY);
        p
    }

    fn intern(&mut self, set: SparseBitVector) -> LabelId {
        if let Some(&id) = self.ids.get(&set) {
            return id;
        }
        let id = LabelId::try_from(self.sets.len()).expect("label pool overflow");
        self.ids.insert(set.clone(), id);
        self.sets.push(set);
        id
    }

    /// The label containing exactly `elem`.
    pub fn singleton(&mut self, elem: u32) -> LabelId {
        let mut s = SparseBitVector::new();
        s.insert(elem);
        self.intern(s)
    }

    /// Melds two labels, memoizing the result.
    pub fn meld(&mut self, a: LabelId, b: LabelId) -> LabelId {
        if a == b || b == Self::EMPTY {
            return a;
        }
        if a == Self::EMPTY {
            return b;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if let Some(&r) = self.memo.get(&key) {
            return r;
        }
        // Subset shortcuts before allocating a union.
        let r = if self.sets[a as usize].is_superset(&self.sets[b as usize]) {
            a
        } else if self.sets[b as usize].is_superset(&self.sets[a as usize]) {
            b
        } else {
            let mut u = self.sets[a as usize].clone();
            u.union_with(&self.sets[b as usize]);
            self.intern(u)
        };
        self.memo.insert(key, r);
        r
    }

    /// The set behind a label.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this pool.
    pub fn set(&self, id: LabelId) -> &SparseBitVector {
        &self.sets[id as usize]
    }

    /// Number of distinct labels interned (including `ε`).
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Returns `true` if only `ε` exists.
    pub fn is_empty(&self) -> bool {
        self.sets.len() <= 1
    }

    /// Number of memoized meld results (a cache diagnostic).
    pub fn memo_size(&self) -> usize {
        self.memo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsfs_testkit::gen;

    #[test]
    fn identity_and_idempotence() {
        let mut p = MeldPool::new();
        let a = p.singleton(7);
        assert_eq!(p.meld(a, a), a);
        assert_eq!(p.meld(a, MeldPool::EMPTY), a);
        assert_eq!(p.meld(MeldPool::EMPTY, a), a);
        assert_eq!(p.meld(MeldPool::EMPTY, MeldPool::EMPTY), MeldPool::EMPTY);
    }

    #[test]
    fn memoization_and_subset_shortcuts() {
        let mut p = MeldPool::new();
        let a = p.singleton(1);
        let b = p.singleton(2);
        let ab = p.meld(a, b);
        let before = p.memo_size();
        assert_eq!(p.meld(b, a), ab, "commutative via unordered key");
        assert_eq!(p.memo_size(), before, "second meld hit the memo");
        assert_eq!(p.meld(ab, b), ab, "superset shortcut");
        assert_eq!(p.len(), 4); // ε, {1}, {2}, {1,2}
    }

    /// The pool agrees with direct sparse-bit-vector unions.
    #[test]
    fn matches_direct_unions() {
        vsfs_testkit::check("meldpool::matches_direct_unions", |rng| {
            let ops = gen::vec_with(rng, 1..40, |r| {
                (r.gen_range(0u32..64), r.gen_range(0usize..8), r.gen_range(0usize..8))
            });
            let mut p = MeldPool::new();
            let mut ids: Vec<LabelId> = vec![MeldPool::EMPTY];
            let mut sets: Vec<SparseBitVector> = vec![SparseBitVector::new()];
            for (elem, i, j) in ops {
                // Alternate: intern a singleton, then meld two existing.
                let s = p.singleton(elem);
                ids.push(s);
                let mut sv = SparseBitVector::new();
                sv.insert(elem);
                sets.push(sv);

                let (i, j) = (i % ids.len(), j % ids.len());
                let m = p.meld(ids[i], ids[j]);
                let mut u = sets[i].clone();
                u.union_with(&sets[j]);
                assert_eq!(p.set(m), &u);
                ids.push(m);
                sets.push(u);
            }
        });
    }
}

//! Lightweight phase timing for the benchmark harness.
//!
//! The paper times each analysis phase separately (auxiliary analysis,
//! memory SSA, SVFG construction, versioning, main phase). [`PhaseTimer`]
//! records named phase durations in order.

use std::time::{Duration, Instant};

/// Records the wall-clock duration of named phases.
///
/// # Examples
///
/// ```
/// use vsfs_adt::stats::PhaseTimer;
///
/// let mut t = PhaseTimer::new();
/// t.time("setup", || { /* work */ });
/// assert_eq!(t.phases().len(), 1);
/// assert_eq!(t.phases()[0].0, "setup");
/// ```
#[derive(Debug, Default, Clone)]
pub struct PhaseTimer {
    phases: Vec<(String, Duration)>,
}

impl PhaseTimer {
    /// Creates an empty timer.
    pub fn new() -> Self {
        PhaseTimer::default()
    }

    /// Runs `f`, recording its duration under `name`, and returns its value.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.phases.push((name.to_string(), start.elapsed()));
        out
    }

    /// Records an externally measured duration.
    pub fn record(&mut self, name: &str, d: Duration) {
        self.phases.push((name.to_string(), d));
    }

    /// The recorded `(name, duration)` pairs, in recording order.
    pub fn phases(&self) -> &[(String, Duration)] {
        &self.phases
    }

    /// The duration of the most recently recorded phase named `name`.
    pub fn duration(&self, name: &str) -> Option<Duration> {
        self.phases.iter().rev().find(|(n, _)| n == name).map(|(_, d)| *d)
    }

    /// Sum of all recorded phases.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_phases_in_order() {
        let mut t = PhaseTimer::new();
        let v = t.time("a", || 41) + 1;
        assert_eq!(v, 42);
        t.record("b", Duration::from_millis(5));
        assert_eq!(t.phases().len(), 2);
        assert_eq!(t.phases()[0].0, "a");
        assert_eq!(t.duration("b"), Some(Duration::from_millis(5)));
        assert!(t.total() >= Duration::from_millis(5));
        assert_eq!(t.duration("missing"), None);
    }
}

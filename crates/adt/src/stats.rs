//! Lightweight phase timing for the benchmark harness.
//!
//! The paper times each analysis phase separately (auxiliary analysis,
//! memory SSA, SVFG construction, versioning, main phase). [`PhaseTimer`]
//! records named phase durations in order, plus named integer counters
//! (task counts, steal counts, worker counts from the parallel phases),
//! and can render both as a JSON object for `BENCH_*.json` outputs.

use std::time::{Duration, Instant};

/// Records the wall-clock duration of named phases.
///
/// # Examples
///
/// ```
/// use vsfs_adt::stats::PhaseTimer;
///
/// let mut t = PhaseTimer::new();
/// t.time("setup", || { /* work */ });
/// assert_eq!(t.phases().len(), 1);
/// assert_eq!(t.phases()[0].0, "setup");
/// ```
#[derive(Debug, Default, Clone)]
pub struct PhaseTimer {
    phases: Vec<(String, Duration)>,
    counters: Vec<(String, u64)>,
}

impl PhaseTimer {
    /// Creates an empty timer.
    pub fn new() -> Self {
        PhaseTimer::default()
    }

    /// Runs `f`, recording its duration under `name`, and returns its value.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.phases.push((name.to_string(), start.elapsed()));
        out
    }

    /// Records an externally measured duration.
    pub fn record(&mut self, name: &str, d: Duration) {
        self.phases.push((name.to_string(), d));
    }

    /// The recorded `(name, duration)` pairs, in recording order.
    pub fn phases(&self) -> &[(String, Duration)] {
        &self.phases
    }

    /// The duration of the most recently recorded phase named `name`.
    pub fn duration(&self, name: &str) -> Option<Duration> {
        self.phases.iter().rev().find(|(n, _)| n == name).map(|(_, d)| *d)
    }

    /// Sum of all recorded phases.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }

    /// Records (or accumulates into) a named integer counter.
    pub fn count(&mut self, name: &str, value: u64) {
        if let Some((_, v)) = self.counters.iter_mut().find(|(n, _)| n == name) {
            *v += value;
        } else {
            self.counters.push((name.to_string(), value));
        }
    }

    /// Records the task/steal/worker counters of one parallel region
    /// under `prefix`, plus its wall time as a phase.
    pub fn record_par(&mut self, prefix: &str, par: &crate::par::ParStats) {
        self.record(prefix, par.wall);
        self.count(&format!("{prefix}.tasks"), par.tasks as u64);
        self.count(&format!("{prefix}.steals"), par.steals as u64);
        self.count(&format!("{prefix}.workers"), par.workers as u64);
    }

    /// The recorded `(name, value)` counters, in recording order.
    pub fn counters(&self) -> &[(String, u64)] {
        &self.counters
    }

    /// The value of counter `name`, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Renders phases (in seconds) and counters as a JSON object:
    /// `{"phases": {...}, "counters": {...}}`. Duplicate phase names
    /// accumulate.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"phases\": {");
        let mut merged: Vec<(String, f64)> = Vec::new();
        for (n, d) in &self.phases {
            if let Some((_, v)) = merged.iter_mut().find(|(m, _)| m == n) {
                *v += d.as_secs_f64();
            } else {
                merged.push((n.clone(), d.as_secs_f64()));
            }
        }
        for (i, (n, secs)) in merged.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {:.6}", json_string(n), secs));
        }
        out.push_str("}, \"counters\": {");
        for (i, (n, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", json_string(n), v));
        }
        out.push_str("}}");
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_phases_in_order() {
        let mut t = PhaseTimer::new();
        let v = t.time("a", || 41) + 1;
        assert_eq!(v, 42);
        t.record("b", Duration::from_millis(5));
        assert_eq!(t.phases().len(), 2);
        assert_eq!(t.phases()[0].0, "a");
        assert_eq!(t.duration("b"), Some(Duration::from_millis(5)));
        assert!(t.total() >= Duration::from_millis(5));
        assert_eq!(t.duration("missing"), None);
    }

    #[test]
    fn counters_accumulate_and_render_as_json() {
        let mut t = PhaseTimer::new();
        t.record("solve", Duration::from_millis(250));
        t.count("solve.tasks", 10);
        t.count("solve.tasks", 5);
        t.count("solve.workers", 4);
        assert_eq!(t.counter("solve.tasks"), Some(15));
        assert_eq!(t.counter("absent"), None);
        let json = t.to_json();
        assert!(json.contains("\"solve\": 0.250000"), "{json}");
        assert!(json.contains("\"solve.tasks\": 15"), "{json}");
        assert!(json.contains("\"solve.workers\": 4"), "{json}");
    }

    #[test]
    fn record_par_feeds_phase_and_counters() {
        let mut t = PhaseTimer::new();
        let par = crate::par::ParStats {
            tasks: 7,
            steals: 2,
            workers: 3,
            wall: Duration::from_millis(10),
        };
        t.record_par("versioning.par", &par);
        assert_eq!(t.duration("versioning.par"), Some(Duration::from_millis(10)));
        assert_eq!(t.counter("versioning.par.tasks"), Some(7));
        assert_eq!(t.counter("versioning.par.steals"), Some(2));
        assert_eq!(t.counter("versioning.par.workers"), Some(3));
    }
}

//! Typed `u32` indices and dense index-keyed vectors.
//!
//! Pointer analyses juggle many id spaces (values, objects, instructions,
//! SVFG nodes, versions, ...). Mixing them up is a classic source of subtle
//! bugs; [`define_index!`](crate::define_index) stamps out zero-cost
//! newtypes so the compiler
//! keeps the spaces apart, and [`IndexVec`] provides a dense map keyed by
//! such an index.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Index, IndexMut};

/// A type usable as a dense index.
///
/// Implemented automatically by [`define_index!`](crate::define_index); also implemented for
/// `usize` and `u32` so plain integers can key an [`IndexVec`].
pub trait Idx: Copy + Eq + std::hash::Hash + Ord + fmt::Debug + 'static {
    /// The position this index denotes.
    fn index(self) -> usize;
    /// Builds the index denoting position `i`.
    fn from_index(i: usize) -> Self;
}

impl Idx for usize {
    fn index(self) -> usize {
        self
    }
    fn from_index(i: usize) -> Self {
        i
    }
}

impl Idx for u32 {
    fn index(self) -> usize {
        self as usize
    }
    fn from_index(i: usize) -> Self {
        u32::try_from(i).expect("index exceeds u32 range")
    }
}

/// Defines a typed `u32` index newtype.
///
/// The generated type implements [`Idx`], the common derive set, `Display`
/// (as `<prefix><n>`), and provides `new`, `raw`, and `index` methods.
///
/// # Examples
///
/// ```
/// use vsfs_adt::define_index;
///
/// define_index!(NodeId, "n");
/// let n = NodeId::new(7);
/// assert_eq!(n.to_string(), "n7");
/// assert_eq!(n.raw(), 7);
/// ```
#[macro_export]
macro_rules! define_index {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates the index for position `raw`.
            pub const fn new(raw: u32) -> Self {
                $name(raw)
            }

            /// The underlying `u32`.
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// The underlying position as `usize`.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl $crate::index::Idx for $name {
            fn index(self) -> usize {
                self.0 as usize
            }
            fn from_index(i: usize) -> Self {
                $name(u32::try_from(i).expect("index exceeds u32 range"))
            }
        }

        impl ::std::fmt::Debug for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl From<$name> for u32 {
            fn from(v: $name) -> u32 {
                v.0
            }
        }

        impl From<$name> for usize {
            fn from(v: $name) -> usize {
                v.0 as usize
            }
        }
    };
}

/// A dense vector keyed by a typed index.
///
/// # Examples
///
/// ```
/// use vsfs_adt::{define_index, IndexVec};
///
/// define_index!(VarId, "v");
/// let mut names: IndexVec<VarId, String> = IndexVec::new();
/// let v = names.push("p".to_string());
/// assert_eq!(names[v], "p");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IndexVec<I, T> {
    raw: Vec<T>,
    _marker: PhantomData<I>,
}

impl<I: Idx, T> IndexVec<I, T> {
    /// Creates an empty vector.
    pub fn new() -> Self {
        IndexVec { raw: Vec::new(), _marker: PhantomData }
    }

    /// Creates an empty vector with the given capacity.
    pub fn with_capacity(cap: usize) -> Self {
        IndexVec { raw: Vec::with_capacity(cap), _marker: PhantomData }
    }

    /// Creates a vector of `n` clones of `elem`.
    pub fn from_elem_n(elem: T, n: usize) -> Self
    where
        T: Clone,
    {
        IndexVec { raw: vec![elem; n], _marker: PhantomData }
    }

    /// Wraps a raw `Vec`.
    pub fn from_raw(raw: Vec<T>) -> Self {
        IndexVec { raw, _marker: PhantomData }
    }

    /// Appends `value`, returning its index.
    pub fn push(&mut self, value: T) -> I {
        let idx = I::from_index(self.raw.len());
        self.raw.push(value);
        idx
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Returns `true` if the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// The index one past the last element (the next index `push` returns).
    pub fn next_index(&self) -> I {
        I::from_index(self.raw.len())
    }

    /// Returns a reference to the element at `index`, if in bounds.
    pub fn get(&self, index: I) -> Option<&T> {
        self.raw.get(index.index())
    }

    /// Returns a mutable reference to the element at `index`, if in bounds.
    pub fn get_mut(&mut self, index: I) -> Option<&mut T> {
        self.raw.get_mut(index.index())
    }

    /// Iterates references to the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.raw.iter()
    }

    /// Iterates mutable references to the elements.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.raw.iter_mut()
    }

    /// Iterates `(index, &element)` pairs.
    pub fn iter_enumerated(&self) -> impl Iterator<Item = (I, &T)> {
        self.raw.iter().enumerate().map(|(i, t)| (I::from_index(i), t))
    }

    /// Iterates all valid indices.
    pub fn indices(&self) -> impl Iterator<Item = I> + 'static {
        (0..self.raw.len()).map(I::from_index)
    }

    /// Grows the vector with clones of `fill` until `index` is in bounds.
    pub fn ensure_contains(&mut self, index: I, fill: T)
    where
        T: Clone,
    {
        if index.index() >= self.raw.len() {
            self.raw.resize(index.index() + 1, fill);
        }
    }

    /// The underlying storage.
    pub fn raw(&self) -> &[T] {
        &self.raw
    }

    /// Consumes the vector, returning the underlying storage.
    pub fn into_raw(self) -> Vec<T> {
        self.raw
    }
}

impl<I: Idx, T> Default for IndexVec<I, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<I: Idx, T> Index<I> for IndexVec<I, T> {
    type Output = T;
    fn index(&self, index: I) -> &T {
        &self.raw[index.index()]
    }
}

impl<I: Idx, T> IndexMut<I> for IndexVec<I, T> {
    fn index_mut(&mut self, index: I) -> &mut T {
        &mut self.raw[index.index()]
    }
}

impl<I, T: fmt::Debug> fmt::Debug for IndexVec<I, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.raw.iter()).finish()
    }
}

impl<I: Idx, T> FromIterator<T> for IndexVec<I, T> {
    fn from_iter<It: IntoIterator<Item = T>>(iter: It) -> Self {
        IndexVec { raw: iter.into_iter().collect(), _marker: PhantomData }
    }
}

impl<'a, I: Idx, T> IntoIterator for &'a IndexVec<I, T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.raw.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    define_index!(TstId, "x");

    #[test]
    fn index_roundtrip() {
        let id = TstId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(TstId::from_index(42), id);
        assert_eq!(format!("{id}"), "x42");
        assert_eq!(format!("{id:?}"), "x42");
        assert_eq!(u32::from(id), 42);
        assert_eq!(usize::from(id), 42);
    }

    #[test]
    fn index_vec_push_and_lookup() {
        let mut v: IndexVec<TstId, &str> = IndexVec::new();
        let a = v.push("a");
        let b = v.push("b");
        assert_eq!(v[a], "a");
        assert_eq!(v[b], "b");
        assert_eq!(v.len(), 2);
        assert_eq!(v.next_index(), TstId::new(2));
        assert_eq!(v.iter_enumerated().count(), 2);
        assert_eq!(v.indices().collect::<Vec<_>>(), vec![a, b]);
    }

    #[test]
    fn index_vec_ensure_contains() {
        let mut v: IndexVec<TstId, u8> = IndexVec::new();
        v.ensure_contains(TstId::new(3), 7);
        assert_eq!(v.len(), 4);
        assert_eq!(v[TstId::new(3)], 7);
        assert_eq!(v[TstId::new(0)], 7);
    }

    #[test]
    fn index_vec_get() {
        let v: IndexVec<TstId, i32> = IndexVec::from_raw(vec![1, 2]);
        assert_eq!(v.get(TstId::new(1)), Some(&2));
        assert_eq!(v.get(TstId::new(2)), None);
    }
}

//! A sparse bit vector over `u32` element indices.
//!
//! The representation mirrors LLVM's `SparseBitVector`, which the paper's
//! SVF implementation uses both for points-to sets and for meld labels: a
//! sorted sequence of 128-bit blocks, each covering an aligned range of
//! element indices. Dense clusters cost two machine words of payload per
//! 128 elements; sparse sets cost one block per populated cluster.
//!
//! All binary operations (`union_with`, `subtract`, `intersect_with`,
//! `is_superset`, `is_disjoint`) are merge joins over the sorted block
//! sequences and run in `O(blocks)`.

/// Number of bits covered by one block.
pub const BITS_PER_BLOCK: u32 = 128;
const WORDS_PER_BLOCK: usize = 2;
const BITS_PER_WORD: u32 = 64;

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Block {
    /// Element index of bit 0 of this block; always a multiple of 128.
    base: u32,
    words: [u64; WORDS_PER_BLOCK],
}

impl Block {
    fn new(base: u32) -> Self {
        Block { base, words: [0; WORDS_PER_BLOCK] }
    }

    fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// A sparse set of `u32` values.
///
/// # Examples
///
/// ```
/// use vsfs_adt::SparseBitVector;
///
/// let mut s = SparseBitVector::new();
/// assert!(s.insert(1000));
/// assert!(!s.insert(1000));
/// assert!(s.contains(1000));
/// assert_eq!(s.len(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct SparseBitVector {
    blocks: Vec<Block>,
}

impl SparseBitVector {
    /// Creates an empty set.
    pub fn new() -> Self {
        SparseBitVector { blocks: Vec::new() }
    }

    /// Returns `true` if the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Number of elements (population count).
    pub fn len(&self) -> usize {
        self.blocks.iter().map(Block::count).sum()
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.blocks.clear();
    }

    fn locate(&self, base: u32) -> Result<usize, usize> {
        self.blocks.binary_search_by_key(&base, |b| b.base)
    }

    /// Inserts `elem`; returns `true` if it was newly inserted.
    pub fn insert(&mut self, elem: u32) -> bool {
        let base = elem & !(BITS_PER_BLOCK - 1);
        let word = ((elem - base) / BITS_PER_WORD) as usize;
        let bit = 1u64 << (elem % BITS_PER_WORD);
        match self.locate(base) {
            Ok(i) => {
                let w = &mut self.blocks[i].words[word];
                let had = *w & bit != 0;
                *w |= bit;
                !had
            }
            Err(i) => {
                let mut b = Block::new(base);
                b.words[word] = bit;
                self.blocks.insert(i, b);
                true
            }
        }
    }

    /// Removes `elem`; returns `true` if it was present.
    pub fn remove(&mut self, elem: u32) -> bool {
        let base = elem & !(BITS_PER_BLOCK - 1);
        let word = ((elem - base) / BITS_PER_WORD) as usize;
        let bit = 1u64 << (elem % BITS_PER_WORD);
        match self.locate(base) {
            Ok(i) => {
                let had = self.blocks[i].words[word] & bit != 0;
                self.blocks[i].words[word] &= !bit;
                if had && self.blocks[i].is_empty() {
                    self.blocks.remove(i);
                }
                had
            }
            Err(_) => false,
        }
    }

    /// Returns `true` if `elem` is in the set.
    pub fn contains(&self, elem: u32) -> bool {
        let base = elem & !(BITS_PER_BLOCK - 1);
        let word = ((elem - base) / BITS_PER_WORD) as usize;
        let bit = 1u64 << (elem % BITS_PER_WORD);
        match self.locate(base) {
            Ok(i) => self.blocks[i].words[word] & bit != 0,
            Err(_) => false,
        }
    }

    /// Unions `other` into `self`; returns `true` if `self` changed.
    ///
    /// This is the meld operator used for object versioning: bitwise-or is
    /// commutative, associative, idempotent, and the empty set is its
    /// identity (Section IV-B of the paper).
    pub fn union_with(&mut self, other: &SparseBitVector) -> bool {
        if other.blocks.is_empty() {
            return false;
        }
        let mut changed = false;
        let mut out = Vec::with_capacity(self.blocks.len().max(other.blocks.len()));
        let mut i = 0;
        let mut j = 0;
        while i < self.blocks.len() && j < other.blocks.len() {
            let (a, b) = (self.blocks[i], other.blocks[j]);
            if a.base < b.base {
                out.push(a);
                i += 1;
            } else if a.base > b.base {
                out.push(b);
                changed = true;
                j += 1;
            } else {
                let mut merged = a;
                for k in 0..WORDS_PER_BLOCK {
                    let w = a.words[k] | b.words[k];
                    if w != a.words[k] {
                        changed = true;
                    }
                    merged.words[k] = w;
                }
                out.push(merged);
                i += 1;
                j += 1;
            }
        }
        if j < other.blocks.len() {
            changed = true;
        }
        out.extend_from_slice(&self.blocks[i..]);
        out.extend_from_slice(&other.blocks[j..]);
        if changed {
            self.blocks = out;
        }
        changed
    }

    /// Removes every element of `other` from `self`; returns `true` if
    /// `self` changed.
    pub fn subtract(&mut self, other: &SparseBitVector) -> bool {
        let mut changed = false;
        let mut i = 0;
        let mut j = 0;
        while i < self.blocks.len() && j < other.blocks.len() {
            let a_base = self.blocks[i].base;
            let b = &other.blocks[j];
            if a_base < b.base {
                i += 1;
            } else if a_base > b.base {
                j += 1;
            } else {
                for k in 0..WORDS_PER_BLOCK {
                    let w = self.blocks[i].words[k] & !b.words[k];
                    if w != self.blocks[i].words[k] {
                        changed = true;
                        self.blocks[i].words[k] = w;
                    }
                }
                j += 1;
                if self.blocks[i].is_empty() {
                    self.blocks.remove(i);
                } else {
                    i += 1;
                }
            }
        }
        changed
    }

    /// Keeps only elements also present in `other`; returns `true` if
    /// `self` changed.
    pub fn intersect_with(&mut self, other: &SparseBitVector) -> bool {
        let mut changed = false;
        let mut out = Vec::new();
        let mut i = 0;
        let mut j = 0;
        while i < self.blocks.len() && j < other.blocks.len() {
            let (a, b) = (self.blocks[i], other.blocks[j]);
            if a.base < b.base {
                changed = true;
                i += 1;
            } else if a.base > b.base {
                j += 1;
            } else {
                let mut merged = a;
                for k in 0..WORDS_PER_BLOCK {
                    let w = a.words[k] & b.words[k];
                    if w != a.words[k] {
                        changed = true;
                    }
                    merged.words[k] = w;
                }
                if !merged.is_empty() {
                    out.push(merged);
                }
                i += 1;
                j += 1;
            }
        }
        if i < self.blocks.len() {
            changed = true;
        }
        if changed {
            self.blocks = out;
        }
        changed
    }

    /// Returns `true` if every element of `other` is in `self`.
    pub fn is_superset(&self, other: &SparseBitVector) -> bool {
        let mut i = 0;
        for b in &other.blocks {
            while i < self.blocks.len() && self.blocks[i].base < b.base {
                i += 1;
            }
            if i >= self.blocks.len() || self.blocks[i].base != b.base {
                return false;
            }
            for k in 0..WORDS_PER_BLOCK {
                if b.words[k] & !self.blocks[i].words[k] != 0 {
                    return false;
                }
            }
        }
        true
    }

    /// Returns `true` if the two sets share no elements.
    pub fn is_disjoint(&self, other: &SparseBitVector) -> bool {
        let mut i = 0;
        let mut j = 0;
        while i < self.blocks.len() && j < other.blocks.len() {
            let (a, b) = (&self.blocks[i], &other.blocks[j]);
            if a.base < b.base {
                i += 1;
            } else if a.base > b.base {
                j += 1;
            } else {
                for k in 0..WORDS_PER_BLOCK {
                    if a.words[k] & b.words[k] != 0 {
                        return false;
                    }
                }
                i += 1;
                j += 1;
            }
        }
        true
    }

    /// If the set holds exactly one element, returns it.
    pub fn as_singleton(&self) -> Option<u32> {
        if self.blocks.len() != 1 {
            return None;
        }
        let b = &self.blocks[0];
        if b.count() != 1 {
            return None;
        }
        for (k, &w) in b.words.iter().enumerate() {
            if w != 0 {
                return Some(b.base + k as u32 * BITS_PER_WORD + w.trailing_zeros());
            }
        }
        unreachable!("non-empty block with no set word")
    }

    /// The smallest element, if any.
    pub fn first(&self) -> Option<u32> {
        self.iter().next()
    }

    /// Iterates elements in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            blocks: &self.blocks,
            block_idx: 0,
            word_idx: 0,
            word: self.blocks.first().map_or(0, |b| b.words[0]),
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.blocks.capacity() * std::mem::size_of::<Block>()
    }

    /// Iterates the populated 128-bit blocks as `(base, words)` pairs,
    /// ascending by base. The bulk codec used by the chunked points-to
    /// store: one block is exactly one chunk.
    pub fn raw_blocks(&self) -> impl Iterator<Item = (u32, [u64; 2])> + '_ {
        self.blocks.iter().map(|b| (b.base, b.words))
    }

    /// Rebuilds a set from `(base, words)` blocks. Blocks must be
    /// 128-aligned, non-empty, and strictly ascending by base — the
    /// shape [`SparseBitVector::raw_blocks`] produces.
    pub fn from_raw_blocks(blocks: impl IntoIterator<Item = (u32, [u64; 2])>) -> SparseBitVector {
        let blocks: Vec<Block> =
            blocks.into_iter().map(|(base, words)| Block { base, words }).collect();
        debug_assert!(blocks.windows(2).all(|w| w[0].base < w[1].base));
        debug_assert!(blocks.iter().all(|b| b.base % BITS_PER_BLOCK == 0 && !b.is_empty()));
        SparseBitVector { blocks }
    }

    /// Number of populated 128-bit blocks (a density diagnostic).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

impl std::fmt::Debug for SparseBitVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<u32> for SparseBitVector {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        let mut s = SparseBitVector::new();
        for e in iter {
            s.insert(e);
        }
        s
    }
}

impl Extend<u32> for SparseBitVector {
    fn extend<T: IntoIterator<Item = u32>>(&mut self, iter: T) {
        for e in iter {
            self.insert(e);
        }
    }
}

/// Iterator over the elements of a [`SparseBitVector`], ascending.
pub struct Iter<'a> {
    blocks: &'a [Block],
    block_idx: usize,
    word_idx: usize,
    word: u64,
}

impl Iterator for Iter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if self.block_idx >= self.blocks.len() {
                return None;
            }
            if self.word != 0 {
                let bit = self.word.trailing_zeros();
                self.word &= self.word - 1;
                let b = &self.blocks[self.block_idx];
                return Some(b.base + self.word_idx as u32 * BITS_PER_WORD + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= WORDS_PER_BLOCK {
                self.block_idx += 1;
                self.word_idx = 0;
            }
            if self.block_idx < self.blocks.len() {
                self.word = self.blocks[self.block_idx].words[self.word_idx];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use vsfs_testkit::{gen, Rng};

    #[test]
    fn insert_remove_contains() {
        let mut s = SparseBitVector::new();
        for &e in &[0u32, 1, 63, 64, 127, 128, 129, 100_000] {
            assert!(!s.contains(e));
            assert!(s.insert(e));
            assert!(s.contains(e));
            assert!(!s.insert(e));
        }
        assert_eq!(s.len(), 8);
        assert!(s.remove(64));
        assert!(!s.contains(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 7);
    }

    #[test]
    fn iteration_is_sorted() {
        let elems = [500u32, 2, 130, 129, 128, 1_000_000, 3];
        let s: SparseBitVector = elems.iter().copied().collect();
        let got: Vec<u32> = s.iter().collect();
        let mut want = elems.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn union_reports_change() {
        let mut a: SparseBitVector = [1u32, 2].into_iter().collect();
        let b: SparseBitVector = [2u32].into_iter().collect();
        assert!(!a.union_with(&b));
        let c: SparseBitVector = [300u32].into_iter().collect();
        assert!(a.union_with(&c));
        assert!(a.contains(300));
    }

    #[test]
    fn union_with_empty_is_noop() {
        let mut a: SparseBitVector = [1u32].into_iter().collect();
        let empty = SparseBitVector::new();
        assert!(!a.union_with(&empty));
        let mut e = SparseBitVector::new();
        assert!(e.union_with(&a));
        assert_eq!(e, a);
    }

    #[test]
    fn singleton_detection() {
        let mut s = SparseBitVector::new();
        assert_eq!(s.as_singleton(), None);
        s.insert(77);
        assert_eq!(s.as_singleton(), Some(77));
        s.insert(1000);
        assert_eq!(s.as_singleton(), None);
        s.remove(77);
        assert_eq!(s.as_singleton(), Some(1000));
    }

    #[test]
    fn subtract_empties_blocks() {
        let mut a: SparseBitVector = [1u32, 129].into_iter().collect();
        let b: SparseBitVector = [129u32].into_iter().collect();
        assert!(a.subtract(&b));
        assert_eq!(a.block_count(), 1);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1]);
        assert!(!a.subtract(&b));
    }

    #[test]
    fn superset_and_disjoint() {
        let a: SparseBitVector = [1u32, 200, 4000].into_iter().collect();
        let b: SparseBitVector = [200u32, 4000].into_iter().collect();
        let c: SparseBitVector = [5u32, 201].into_iter().collect();
        assert!(a.is_superset(&b));
        assert!(!b.is_superset(&a));
        assert!(a.is_superset(&a));
        assert!(a.is_superset(&SparseBitVector::new()));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
    }

    fn model(rng: &mut Rng) -> Vec<u32> {
        gen::vec_with(rng, 0..200, |r| r.gen_range(0u32..2048))
    }

    #[test]
    fn matches_btreeset_model() {
        vsfs_testkit::check("sbv::matches_btreeset_model", |rng| {
            let (xs, ys) = (model(rng), model(rng));
            let a: SparseBitVector = xs.iter().copied().collect();
            let b: SparseBitVector = ys.iter().copied().collect();
            let ma: BTreeSet<u32> = xs.iter().copied().collect();
            let mb: BTreeSet<u32> = ys.iter().copied().collect();

            assert_eq!(a.len(), ma.len());
            assert_eq!(a.iter().collect::<Vec<_>>(), ma.iter().copied().collect::<Vec<_>>());

            let mut u = a.clone();
            let changed = u.union_with(&b);
            let mu: BTreeSet<u32> = ma.union(&mb).copied().collect();
            assert_eq!(changed, mu != ma);
            assert_eq!(u.iter().collect::<Vec<_>>(), mu.iter().copied().collect::<Vec<_>>());

            let mut d = a.clone();
            let changed = d.subtract(&b);
            let md: BTreeSet<u32> = ma.difference(&mb).copied().collect();
            assert_eq!(changed, md != ma);
            assert_eq!(d.iter().collect::<Vec<_>>(), md.iter().copied().collect::<Vec<_>>());

            let mut n = a.clone();
            let changed = n.intersect_with(&b);
            let mn: BTreeSet<u32> = ma.intersection(&mb).copied().collect();
            assert_eq!(changed, mn != ma);
            assert_eq!(n.iter().collect::<Vec<_>>(), mn.iter().copied().collect::<Vec<_>>());

            assert_eq!(a.is_superset(&b), mb.is_subset(&ma));
            assert_eq!(a.is_disjoint(&b), ma.is_disjoint(&mb));
        });
    }

    #[test]
    fn meld_operator_laws() {
        vsfs_testkit::check("sbv::meld_operator_laws", |rng| {
            let (xs, ys, zs) = (model(rng), model(rng), model(rng));
            // union_with is the paper's meld operator; check the four laws
            // of Section IV-B: commutativity, associativity, idempotence,
            // identity.
            let a: SparseBitVector = xs.iter().copied().collect();
            let b: SparseBitVector = ys.iter().copied().collect();
            let c: SparseBitVector = zs.iter().copied().collect();

            let mut ab = a.clone();
            ab.union_with(&b);
            let mut ba = b.clone();
            ba.union_with(&a);
            assert_eq!(&ab, &ba); // commutative

            let mut a_bc = {
                let mut bc = b.clone();
                bc.union_with(&c);
                let mut r = a.clone();
                r.union_with(&bc);
                r
            };
            let ab_c = {
                let mut r = ab.clone();
                r.union_with(&c);
                r
            };
            assert_eq!(&a_bc, &ab_c); // associative
            let before = a_bc.clone();
            a_bc.union_with(&before);
            assert_eq!(&a_bc, &before); // idempotent

            let mut id = a.clone();
            assert!(!id.union_with(&SparseBitVector::new())); // identity
            assert_eq!(&id, &a);
        });
    }
}

//! std-only parallel execution primitives.
//!
//! Everything here is built from `std::thread::scope`, mutex-sharded
//! queues, and atomic counters — no external crates. The design goal is
//! *deterministic* parallelism: callers arrange for worker output to be
//! keyed by task index (or by disjoint contiguous slice regions), so the
//! merged result is a pure function of the input regardless of thread
//! count or scheduling. The solvers build on three pieces:
//!
//! * [`ParConfig`] — a thread-count knob (`--jobs N`; `0` = all cores);
//! * [`ShardedWorklist`] — a work-stealing queue of task indices, sharded
//!   over per-worker mutexes to keep contention off the hot path;
//! * [`run_tasks`] — the scoped-thread driver: executes `n` independent
//!   tasks, seeds shards by a caller-provided cost estimate (longest
//!   processing time first), and returns results *in task order* plus
//!   [`ParStats`] counters for the stats layer.
//!
//! For phases that mutate a dense array in place (e.g. applying
//! points-to unions sharded by target node), [`split_by_cost`] computes
//! contiguous cost-balanced ranges so the caller can hand each worker a
//! disjoint `&mut` chunk via `split_at_mut` — data-parallel writes with
//! no unsafe code and no locks.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Thread-count configuration for the parallel phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParConfig {
    /// Requested worker count; `0` means "use all available cores".
    pub jobs: usize,
}

impl ParConfig {
    /// A configuration running `jobs` workers (`0` = all cores).
    pub fn new(jobs: usize) -> Self {
        ParConfig { jobs }
    }

    /// The sequential configuration.
    pub fn sequential() -> Self {
        ParConfig { jobs: 1 }
    }

    /// The concrete worker count: `jobs`, or the machine's available
    /// parallelism when `jobs` is `0`.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.jobs
        }
    }
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig::sequential()
    }
}

/// Execution counters from one parallel phase, fed into
/// [`crate::stats::PhaseTimer`] by the solvers.
#[derive(Debug, Default, Clone, Copy)]
pub struct ParStats {
    /// Number of tasks executed.
    pub tasks: usize,
    /// Tasks a worker popped from another worker's shard.
    pub steals: usize,
    /// Workers actually spawned.
    pub workers: usize,
    /// Wall-clock time of the parallel region.
    pub wall: Duration,
}

/// A work-stealing FIFO of homogeneous tasks, sharded over per-worker
/// mutexes.
///
/// Pops try the worker's home shard first and then scan the other
/// shards round-robin; an atomic count of outstanding items lets idle
/// workers terminate without a separate condition variable (the queue
/// is used for fixed task sets, not producer/consumer streams).
#[derive(Debug)]
pub struct ShardedWorklist<T> {
    shards: Vec<Mutex<VecDeque<T>>>,
    remaining: AtomicUsize,
    steals: AtomicUsize,
}

impl<T> ShardedWorklist<T> {
    /// An empty worklist with `shards` shards (at least 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedWorklist {
            shards: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            remaining: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Pushes `item` onto shard `shard % shard_count`.
    pub fn push(&self, shard: usize, item: T) {
        self.remaining.fetch_add(1, Ordering::SeqCst);
        self.shards[shard % self.shards.len()].lock().unwrap().push_back(item);
    }

    /// Pops a task, preferring shard `home`, stealing from the others
    /// otherwise. Returns `None` once the worklist is globally empty.
    pub fn pop(&self, home: usize) -> Option<T> {
        let n = self.shards.len();
        loop {
            if self.remaining.load(Ordering::SeqCst) == 0 {
                return None;
            }
            for k in 0..n {
                let s = (home + k) % n;
                if let Some(item) = self.shards[s].lock().unwrap().pop_front() {
                    self.remaining.fetch_sub(1, Ordering::SeqCst);
                    if k != 0 {
                        self.steals.fetch_add(1, Ordering::Relaxed);
                    }
                    return Some(item);
                }
            }
            // All shards looked empty but `remaining` was non-zero: a
            // push raced ahead of its enqueue. Spin; the fixed task sets
            // used here make this window a few instructions wide.
            std::hint::spin_loop();
        }
    }

    /// Total cross-shard steals so far.
    pub fn steal_count(&self) -> usize {
        self.steals.load(Ordering::Relaxed)
    }
}

/// Splits `0..len` into at most `parts` contiguous, near-even ranges.
pub fn split_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1).min(len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        if size == 0 {
            continue;
        }
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Splits `0..costs.len()` into at most `parts` *contiguous* ranges of
/// near-equal total cost. Contiguity is what lets callers carve a dense
/// array into disjoint `&mut` chunks with `split_at_mut`; the output
/// depends only on `costs` and `parts`, never on scheduling.
pub fn split_by_cost(costs: &[u64], parts: usize) -> Vec<std::ops::Range<usize>> {
    let n = costs.len();
    let parts = parts.max(1).min(n.max(1));
    if parts <= 1 || n == 0 {
        return vec![0..n];
    }
    let total: u64 = costs.iter().sum();
    let target = total / parts as u64;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    let mut acc = 0u64;
    for (i, &c) in costs.iter().enumerate() {
        acc += c;
        // Close the range once the budget is met, keeping enough items
        // for the remaining parts to be non-empty.
        let remaining_parts = parts - out.len();
        if acc >= target.max(1) && n - (i + 1) >= remaining_parts - 1 && remaining_parts > 1 {
            out.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    out.push(start..n);
    out
}

/// Runs `tasks` independent tasks on `config.effective_jobs()` scoped
/// threads and returns the results **in task order**, plus execution
/// counters.
///
/// `cost` estimates task weight (heavier tasks are distributed first,
/// longest-processing-time greedy) purely to balance the initial shard
/// assignment; the work-stealing pops make the estimate non-critical.
/// Output order — and therefore every downstream consumer — is
/// independent of the worker count.
pub fn run_tasks<R: Send>(
    config: ParConfig,
    tasks: usize,
    cost: impl Fn(usize) -> u64,
    run: impl Fn(usize) -> R + Sync,
) -> (Vec<R>, ParStats) {
    run_tasks_with(config, tasks, cost, || (), |(), i| run(i))
}

/// Like [`run_tasks`], but each worker first builds private scratch
/// state with `init` and threads it through its tasks — the pattern the
/// per-object versioning phase uses to reuse one dense work area per
/// worker instead of reallocating per task.
pub fn run_tasks_with<S, R: Send>(
    config: ParConfig,
    tasks: usize,
    cost: impl Fn(usize) -> u64,
    init: impl Fn() -> S + Sync,
    run: impl Fn(&mut S, usize) -> R + Sync,
) -> (Vec<R>, ParStats) {
    let start = Instant::now();
    let jobs = config.effective_jobs().max(1).min(tasks.max(1));
    if jobs <= 1 {
        let mut state = init();
        let out = (0..tasks).map(|i| run(&mut state, i)).collect();
        return (
            out,
            ParStats { tasks, steals: 0, workers: 1, wall: start.elapsed() },
        );
    }

    // Seed shards LPT-style: heaviest tasks first, each onto the
    // currently lightest shard (ties to the lowest shard id).
    let wl = ShardedWorklist::new(jobs);
    let mut order: Vec<usize> = (0..tasks).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(cost(i)), i));
    let mut load = vec![0u64; jobs];
    for i in order {
        let shard = (0..jobs).min_by_key(|&s| (load[s], s)).unwrap();
        load[shard] += cost(i).max(1);
        wl.push(shard, i);
    }

    let mut slots: Vec<Option<R>> = Vec::with_capacity(tasks);
    slots.resize_with(tasks, || None);
    let run = &run;
    let init = &init;
    let wl = &wl;
    let mut collected: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|w| {
                scope.spawn(move || {
                    let mut state = init();
                    let mut mine = Vec::new();
                    while let Some(i) = wl.pop(w) {
                        mine.push((i, run(&mut state, i)));
                    }
                    mine
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("parallel worker panicked")).collect()
    });
    for (i, r) in collected.drain(..).flatten() {
        debug_assert!(slots[i].is_none());
        slots[i] = Some(r);
    }
    let out: Vec<R> = slots.into_iter().map(|s| s.expect("task not executed")).collect();
    let stats = ParStats { tasks, steals: wl.steal_count(), workers: jobs, wall: start.elapsed() };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_jobs_resolves_zero() {
        assert!(ParConfig::new(0).effective_jobs() >= 1);
        assert_eq!(ParConfig::new(3).effective_jobs(), 3);
        assert_eq!(ParConfig::default().effective_jobs(), 1);
    }

    #[test]
    fn split_ranges_covers_exactly() {
        for len in [0usize, 1, 7, 64, 100] {
            for parts in [1usize, 2, 3, 8, 200] {
                let rs = split_ranges(len, parts);
                let mut next = 0;
                for r in &rs {
                    assert_eq!(r.start, next);
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(rs.iter().map(|r| r.len()).sum::<usize>(), len);
            }
        }
    }

    #[test]
    fn split_by_cost_is_contiguous_and_balanced() {
        let costs: Vec<u64> = (0..100).map(|i| (i % 7) + 1).collect();
        let rs = split_by_cost(&costs, 4);
        assert!(rs.len() <= 4);
        let mut next = 0;
        for r in &rs {
            assert_eq!(r.start, next);
            next = r.end;
        }
        assert_eq!(next, costs.len());
        let total: u64 = costs.iter().sum();
        for r in &rs {
            let part: u64 = costs[r.clone()].iter().sum();
            assert!(part <= total / 2, "part {part} of {total} too heavy");
        }
    }

    #[test]
    fn sharded_worklist_drains_fully() {
        let wl = ShardedWorklist::new(4);
        for i in 0..100 {
            wl.push(i, i);
        }
        let mut seen: Vec<usize> = std::iter::from_fn(|| wl.pop(2)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
        assert!(wl.pop(0).is_none());
    }

    #[test]
    fn run_tasks_returns_in_task_order_for_any_job_count() {
        let expect: Vec<usize> = (0..257).map(|i| i * 3).collect();
        for jobs in [1usize, 2, 3, 8] {
            let (got, stats) =
                run_tasks(ParConfig::new(jobs), 257, |i| (i % 5) as u64, |i| i * 3);
            assert_eq!(got, expect, "jobs = {jobs}");
            assert_eq!(stats.tasks, 257);
            assert!(stats.workers <= jobs.max(1));
        }
    }

    #[test]
    fn run_tasks_handles_empty_and_tiny_sets() {
        let (got, _) = run_tasks(ParConfig::new(8), 0, |_| 1, |i| i);
        assert!(got.is_empty());
        let (got, _) = run_tasks(ParConfig::new(8), 1, |_| 1, |i| i + 10);
        assert_eq!(got, vec![10]);
    }
}

//! std-only parallel execution primitives.
//!
//! Everything here is built from `std::thread::scope`, mutex-sharded
//! queues, and atomic counters — no external crates. The design goal is
//! *deterministic* parallelism: callers arrange for worker output to be
//! keyed by task index (or by disjoint contiguous slice regions), so the
//! merged result is a pure function of the input regardless of thread
//! count or scheduling. The solvers build on three pieces:
//!
//! * [`ParConfig`] — a thread-count knob (`--jobs N`; `0` = all cores);
//! * [`ShardedWorklist`] — a work-stealing queue of task indices, sharded
//!   over per-worker mutexes to keep contention off the hot path;
//! * [`run_tasks`] — the scoped-thread driver: executes `n` independent
//!   tasks, seeds shards by a caller-provided cost estimate (longest
//!   processing time first), and returns results *in task order* plus
//!   [`ParStats`] counters for the stats layer.
//!
//! For phases that mutate a dense array in place (e.g. applying
//! points-to unions sharded by target node), [`split_by_cost`] computes
//! contiguous cost-balanced ranges so the caller can hand each worker a
//! disjoint `&mut` chunk via `split_at_mut` — data-parallel writes with
//! no unsafe code and no locks.

//! # Panic isolation
//!
//! Every task body runs under `catch_unwind`: a panicking task is
//! reported as a structured [`WorkerFault`] (task index + payload text)
//! while the surviving workers drain the queue. Historically a worker
//! panic unwound through `thread::scope` — and with *two* panicking
//! workers the scope's implicit joins panicked during unwinding, taking
//! the whole process down with an abort. The locks in
//! [`ShardedWorklist`] are additionally poison-tolerant, so no fault can
//! wedge the queue.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crate::govern::{panic_message, Governor, ParInterrupt, WorkerFault};

/// Locks a shard mutex, shrugging off poison: the queue holds plain
/// task data whose invariants cannot be broken mid-`push`/`pop`, and
/// task panics are caught before they can unwind through a held lock
/// anyway.
fn lock_shard<T>(m: &Mutex<VecDeque<T>>) -> MutexGuard<'_, VecDeque<T>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Thread-count configuration for the parallel phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParConfig {
    /// Requested worker count; `0` means "use all available cores".
    pub jobs: usize,
}

impl ParConfig {
    /// A configuration running `jobs` workers (`0` = all cores).
    pub fn new(jobs: usize) -> Self {
        ParConfig { jobs }
    }

    /// The sequential configuration.
    pub fn sequential() -> Self {
        ParConfig { jobs: 1 }
    }

    /// The concrete worker count: `jobs`, or the machine's available
    /// parallelism when `jobs` is `0`.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.jobs
        }
    }
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig::sequential()
    }
}

/// Execution counters from one parallel phase, fed into
/// [`crate::stats::PhaseTimer`] by the solvers.
#[derive(Debug, Default, Clone, Copy)]
pub struct ParStats {
    /// Number of tasks executed.
    pub tasks: usize,
    /// Tasks a worker popped from another worker's shard.
    pub steals: usize,
    /// Workers actually spawned.
    pub workers: usize,
    /// Wall-clock time of the parallel region.
    pub wall: Duration,
}

/// A work-stealing FIFO of homogeneous tasks, sharded over per-worker
/// mutexes.
///
/// Pops try the worker's home shard first and then scan the other
/// shards round-robin; an atomic count of outstanding items lets idle
/// workers terminate without a separate condition variable (the queue
/// is used for fixed task sets, not producer/consumer streams).
#[derive(Debug)]
pub struct ShardedWorklist<T> {
    shards: Vec<Mutex<VecDeque<T>>>,
    remaining: AtomicUsize,
    steals: AtomicUsize,
}

impl<T> ShardedWorklist<T> {
    /// An empty worklist with `shards` shards (at least 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedWorklist {
            shards: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            remaining: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Pushes `item` onto shard `shard % shard_count`.
    pub fn push(&self, shard: usize, item: T) {
        self.remaining.fetch_add(1, Ordering::SeqCst);
        lock_shard(&self.shards[shard % self.shards.len()]).push_back(item);
    }

    /// Pops a task, preferring shard `home`, stealing from the others
    /// otherwise. Returns `None` once the worklist is globally empty.
    pub fn pop(&self, home: usize) -> Option<T> {
        let n = self.shards.len();
        loop {
            if self.remaining.load(Ordering::SeqCst) == 0 {
                return None;
            }
            for k in 0..n {
                let s = (home + k) % n;
                if let Some(item) = lock_shard(&self.shards[s]).pop_front() {
                    self.remaining.fetch_sub(1, Ordering::SeqCst);
                    if k != 0 {
                        self.steals.fetch_add(1, Ordering::Relaxed);
                    }
                    return Some(item);
                }
            }
            // All shards looked empty but `remaining` was non-zero: a
            // push raced ahead of its enqueue. Spin; the fixed task sets
            // used here make this window a few instructions wide.
            std::hint::spin_loop();
        }
    }

    /// Total cross-shard steals so far.
    pub fn steal_count(&self) -> usize {
        self.steals.load(Ordering::Relaxed)
    }
}

/// Splits `0..len` into at most `parts` contiguous, near-even ranges.
pub fn split_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1).min(len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        if size == 0 {
            continue;
        }
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Splits `0..costs.len()` into at most `parts` *contiguous* ranges of
/// near-equal total cost. Contiguity is what lets callers carve a dense
/// array into disjoint `&mut` chunks with `split_at_mut`; the output
/// depends only on `costs` and `parts`, never on scheduling.
pub fn split_by_cost(costs: &[u64], parts: usize) -> Vec<std::ops::Range<usize>> {
    let n = costs.len();
    let parts = parts.max(1).min(n.max(1));
    if parts <= 1 || n == 0 {
        return std::iter::once(0..n).collect();
    }
    let total: u64 = costs.iter().sum();
    let target = total / parts as u64;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    let mut acc = 0u64;
    for (i, &c) in costs.iter().enumerate() {
        acc += c;
        // Close the range once the budget is met, keeping enough items
        // for the remaining parts to be non-empty.
        let remaining_parts = parts - out.len();
        if acc >= target.max(1) && n - (i + 1) >= remaining_parts - 1 && remaining_parts > 1 {
            out.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    out.push(start..n);
    out
}

/// Runs `tasks` independent tasks on `config.effective_jobs()` scoped
/// threads and returns the results **in task order**, plus execution
/// counters.
///
/// `cost` estimates task weight (heavier tasks are distributed first,
/// longest-processing-time greedy) purely to balance the initial shard
/// assignment; the work-stealing pops make the estimate non-critical.
/// Output order — and therefore every downstream consumer — is
/// independent of the worker count.
pub fn run_tasks<R: Send>(
    config: ParConfig,
    tasks: usize,
    cost: impl Fn(usize) -> u64,
    run: impl Fn(usize) -> R + Sync,
) -> (Vec<R>, ParStats) {
    run_tasks_with(config, tasks, cost, || (), |(), i| run(i))
}

/// Like [`run_tasks`], but each worker first builds private scratch
/// state with `init` and threads it through its tasks — the pattern the
/// per-object versioning phase uses to reuse one dense work area per
/// worker instead of reallocating per task.
pub fn run_tasks_with<S, R: Send>(
    config: ParConfig,
    tasks: usize,
    cost: impl Fn(usize) -> u64,
    init: impl Fn() -> S + Sync,
    run: impl Fn(&mut S, usize) -> R + Sync,
) -> (Vec<R>, ParStats) {
    match try_run_tasks_with(config, tasks, cost, None, init, run) {
        Ok(out) => out,
        Err(interrupt) => {
            // Without a governor there is no cancellation source, so an
            // interrupt always carries at least one fault. Surface it as
            // one clean driver-thread panic — never an abort.
            let f = interrupt.faults.first().expect("interrupt without faults or governor");
            panic!("parallel {f}");
        }
    }
}

/// The governed task driver underlying [`run_tasks_with`].
///
/// Identical scheduling and output ordering, plus:
///
/// * every task body runs under `catch_unwind`; panics become
///   [`WorkerFault`]s while the remaining tasks keep running;
/// * when a [`Governor`] is supplied, workers poll
///   [`Governor::is_cancelled`] between pops (stopping early once the
///   governor trips) and the governor's panic fault, if any, is
///   injected into the matching task index — in the sequential path
///   too, so injection behaves identically for every job count.
///
/// Returns `Err` if any task panicked or the region was cancelled; the
/// partial results are discarded (callers degrade instead).
pub fn try_run_tasks_with<S, R: Send>(
    config: ParConfig,
    tasks: usize,
    cost: impl Fn(usize) -> u64,
    governor: Option<&Governor>,
    init: impl Fn() -> S + Sync,
    run: impl Fn(&mut S, usize) -> R + Sync,
) -> Result<(Vec<R>, ParStats), ParInterrupt> {
    try_run_tasks_seeded(config, tasks, cost, None, governor, init, run)
}

/// Like [`try_run_tasks_with`], but shards are seeded *group-major*:
/// `group(i)` names each task's group, whole groups are LPT-packed onto
/// shards by their total cost, and a group's tasks start on the same
/// worker. Used to seed per-object versioning shards from the disjoint
/// alias regions of a unification pre-analysis, so tasks whose data can
/// overlap share a worker's cache. Work stealing still rebalances, and
/// results stay in task order — grouping is purely a scheduling hint
/// and never changes the output.
pub fn try_run_tasks_grouped<S, R: Send>(
    config: ParConfig,
    tasks: usize,
    cost: impl Fn(usize) -> u64 + Copy,
    group: impl Fn(usize) -> u64,
    governor: Option<&Governor>,
    init: impl Fn() -> S + Sync,
    run: impl Fn(&mut S, usize) -> R + Sync,
) -> Result<(Vec<R>, ParStats), ParInterrupt> {
    let groups: Vec<u64> = (0..tasks).map(group).collect();
    try_run_tasks_seeded(config, tasks, cost, Some(&groups), governor, init, run)
}

fn try_run_tasks_seeded<S, R: Send>(
    config: ParConfig,
    tasks: usize,
    cost: impl Fn(usize) -> u64,
    groups: Option<&[u64]>,
    governor: Option<&Governor>,
    init: impl Fn() -> S + Sync,
    run: impl Fn(&mut S, usize) -> R + Sync,
) -> Result<(Vec<R>, ParStats), ParInterrupt> {
    let start = Instant::now();
    let jobs = config.effective_jobs().max(1).min(tasks.max(1));
    let exec = |state: &mut S, i: usize| -> Result<R, WorkerFault> {
        catch_unwind(AssertUnwindSafe(|| {
            if let Some(g) = governor {
                g.maybe_inject_panic(i);
            }
            run(state, i)
        }))
        .map_err(|payload| WorkerFault { task: i, message: panic_message(&*payload) })
    };

    if jobs <= 1 {
        let mut state = init();
        let mut out = Vec::with_capacity(tasks);
        let mut faults = Vec::new();
        let mut cancelled = false;
        for i in 0..tasks {
            if governor.is_some_and(|g| g.is_cancelled()) {
                cancelled = true;
                break;
            }
            match exec(&mut state, i) {
                Ok(r) => out.push(r),
                Err(f) => faults.push(f),
            }
        }
        if !faults.is_empty() || cancelled {
            return Err(ParInterrupt { faults, cancelled });
        }
        return Ok((out, ParStats { tasks, steals: 0, workers: 1, wall: start.elapsed() }));
    }

    // Seed shards LPT-style: heaviest units first, each onto the
    // currently lightest shard (ties to the lowest shard id). A unit is
    // one task, or — with `groups` — one whole group, so grouped tasks
    // start on the same worker.
    let wl = ShardedWorklist::new(jobs);
    let mut load = vec![0u64; jobs];
    match groups {
        None => {
            let mut order: Vec<usize> = (0..tasks).collect();
            order.sort_by_key(|&i| (std::cmp::Reverse(cost(i)), i));
            for i in order {
                let shard = (0..jobs).min_by_key(|&s| (load[s], s)).unwrap();
                load[shard] += cost(i).max(1);
                wl.push(shard, i);
            }
        }
        Some(gids) => {
            // Group id -> (total cost, member tasks in ascending order).
            let mut members: std::collections::BTreeMap<u64, (u64, Vec<usize>)> =
                std::collections::BTreeMap::new();
            for (i, &gid) in gids.iter().enumerate().take(tasks) {
                let e = members.entry(gid).or_default();
                e.0 += cost(i).max(1);
                e.1.push(i);
            }
            let mut order: Vec<(u64, (u64, Vec<usize>))> = members.into_iter().collect();
            order.sort_by_key(|&(gid, (total, _))| (std::cmp::Reverse(total), gid));
            for (_, (total, tasks_of_group)) in order {
                let shard = (0..jobs).min_by_key(|&s| (load[s], s)).unwrap();
                load[shard] += total;
                for i in tasks_of_group {
                    wl.push(shard, i);
                }
            }
        }
    }

    let mut slots: Vec<Option<R>> = Vec::with_capacity(tasks);
    slots.resize_with(tasks, || None);
    let exec = &exec;
    let init = &init;
    let wl = &wl;
    type WorkerYield<R> = (Vec<(usize, R)>, Vec<WorkerFault>, bool);
    let collected: Vec<WorkerYield<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|w| {
                scope.spawn(move || {
                    let mut state = init();
                    let mut mine = Vec::new();
                    let mut my_faults = Vec::new();
                    let mut stopped = false;
                    loop {
                        if governor.is_some_and(|g| g.is_cancelled()) {
                            stopped = true;
                            break;
                        }
                        let Some(i) = wl.pop(w) else { break };
                        match exec(&mut state, i) {
                            Ok(r) => mine.push((i, r)),
                            Err(f) => my_faults.push(f),
                        }
                    }
                    (mine, my_faults, stopped)
                })
            })
            .collect();
        // Worker closures catch task panics themselves, so join can
        // only fail on a harness-level bug; report it as a fault
        // rather than unwinding through the scope.
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|payload| {
                    let fault = WorkerFault { task: usize::MAX, message: panic_message(&*payload) };
                    (Vec::new(), vec![fault], false)
                })
            })
            .collect()
    });

    let mut faults = Vec::new();
    let mut cancelled = false;
    for (mine, my_faults, stopped) in collected {
        for (i, r) in mine {
            debug_assert!(slots[i].is_none());
            slots[i] = Some(r);
        }
        faults.extend(my_faults);
        cancelled |= stopped;
    }
    if !faults.is_empty() || cancelled {
        faults.sort_by_key(|f| f.task);
        return Err(ParInterrupt { faults, cancelled });
    }
    let out: Vec<R> = slots.into_iter().map(|s| s.expect("task not executed")).collect();
    let stats = ParStats { tasks, steals: wl.steal_count(), workers: jobs, wall: start.elapsed() };
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_jobs_resolves_zero() {
        assert!(ParConfig::new(0).effective_jobs() >= 1);
        assert_eq!(ParConfig::new(3).effective_jobs(), 3);
        assert_eq!(ParConfig::default().effective_jobs(), 1);
    }

    #[test]
    fn split_ranges_covers_exactly() {
        for len in [0usize, 1, 7, 64, 100] {
            for parts in [1usize, 2, 3, 8, 200] {
                let rs = split_ranges(len, parts);
                let mut next = 0;
                for r in &rs {
                    assert_eq!(r.start, next);
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(rs.iter().map(|r| r.len()).sum::<usize>(), len);
            }
        }
    }

    #[test]
    fn split_by_cost_is_contiguous_and_balanced() {
        let costs: Vec<u64> = (0..100).map(|i| (i % 7) + 1).collect();
        let rs = split_by_cost(&costs, 4);
        assert!(rs.len() <= 4);
        let mut next = 0;
        for r in &rs {
            assert_eq!(r.start, next);
            next = r.end;
        }
        assert_eq!(next, costs.len());
        let total: u64 = costs.iter().sum();
        for r in &rs {
            let part: u64 = costs[r.clone()].iter().sum();
            assert!(part <= total / 2, "part {part} of {total} too heavy");
        }
    }

    #[test]
    fn sharded_worklist_drains_fully() {
        let wl = ShardedWorklist::new(4);
        for i in 0..100 {
            wl.push(i, i);
        }
        let mut seen: Vec<usize> = std::iter::from_fn(|| wl.pop(2)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
        assert!(wl.pop(0).is_none());
    }

    #[test]
    fn run_tasks_returns_in_task_order_for_any_job_count() {
        let expect: Vec<usize> = (0..257).map(|i| i * 3).collect();
        for jobs in [1usize, 2, 3, 8] {
            let (got, stats) = run_tasks(ParConfig::new(jobs), 257, |i| (i % 5) as u64, |i| i * 3);
            assert_eq!(got, expect, "jobs = {jobs}");
            assert_eq!(stats.tasks, 257);
            assert!(stats.workers <= jobs.max(1));
        }
    }

    #[test]
    fn run_tasks_handles_empty_and_tiny_sets() {
        let (got, _) = run_tasks(ParConfig::new(8), 0, |_| 1, |i| i);
        assert!(got.is_empty());
        let (got, _) = run_tasks(ParConfig::new(8), 1, |_| 1, |i| i + 10);
        assert_eq!(got, vec![10]);
    }

    /// Regression test for the pre-fix abort: two panicking workers used
    /// to unwind through `thread::scope` simultaneously — the scope's
    /// implicit joins then panicked *during unwinding*, aborting the
    /// process. Now every task panic is caught, reported as a sorted
    /// [`WorkerFault`] list, and the surviving workers drain the queue.
    #[test]
    fn multiple_worker_panics_report_faults_instead_of_aborting() {
        crate::govern::silence_injected_panics();
        for jobs in [1usize, 4] {
            let result = try_run_tasks_with(
                ParConfig::new(jobs),
                64,
                |_| 1,
                None,
                || (),
                |(), i| {
                    if i == 3 || i == 40 {
                        std::panic::panic_any(crate::govern::InjectedPanic { task: i });
                    }
                    i * 2
                },
            );
            let interrupt = result.expect_err("panicking tasks must interrupt");
            assert!(!interrupt.cancelled);
            assert_eq!(
                interrupt.faults.iter().map(|f| f.task).collect::<Vec<_>>(),
                vec![3, 40],
                "jobs = {jobs}"
            );
            for f in &interrupt.faults {
                assert!(f.message.contains("injected panic"), "message: {}", f.message);
            }
        }
        // The shared machinery stays healthy after faults: a fresh run
        // on the same thread completes normally (no poisoned state).
        let (got, _) = run_tasks(ParConfig::new(4), 16, |_| 1, |i| i + 1);
        assert_eq!(got, (1..=16).collect::<Vec<_>>());
    }

    #[test]
    fn real_panic_payloads_are_reported_with_their_message() {
        crate::govern::silence_injected_panics();
        // A plain panic! payload (not an InjectedPanic) flows through
        // catch_unwind into the fault message. The hook above only
        // silences injected payloads, so this one line of stderr noise
        // is expected and harmless.
        let result = try_run_tasks_with(
            ParConfig::new(2),
            8,
            |_| 1,
            None,
            || (),
            |(), i| {
                assert!(i != 5, "task five exploded");
                i
            },
        );
        let interrupt = result.expect_err("panicking task must interrupt");
        assert_eq!(interrupt.faults.len(), 1);
        assert_eq!(interrupt.faults[0].task, 5);
        assert!(interrupt.faults[0].message.contains("task five exploded"));
    }

    #[test]
    fn governed_run_injects_panic_identically_for_any_job_count() {
        use crate::govern::{Budget, FaultKind, FaultSpec, Governor};
        for jobs in [1usize, 2, 8] {
            let g = Governor::new(Budget::unlimited())
                .with_fault(Some(FaultSpec { kind: FaultKind::PanicAtTask, at: 11 }));
            let result =
                try_run_tasks_with(ParConfig::new(jobs), 32, |_| 1, Some(&g), || (), |(), i| i);
            let interrupt = result.expect_err("injected panic must interrupt");
            assert_eq!(interrupt.faults.len(), 1, "jobs = {jobs}");
            assert_eq!(interrupt.faults[0].task, 11);
            g.note_interrupt(&interrupt);
            assert!(!g.completion().is_complete());
        }
    }

    #[test]
    fn grouped_seeding_keeps_results_in_task_order() {
        for jobs in [1usize, 2, 4, 8] {
            let (out, stats) = try_run_tasks_grouped(
                ParConfig::new(jobs),
                40,
                |i| (i as u64 % 5) + 1,
                |i| (i as u64) % 3,
                None,
                || (),
                |(), i| i * 2,
            )
            .expect("no faults");
            assert_eq!(out, (0..40).map(|i| i * 2).collect::<Vec<_>>(), "jobs = {jobs}");
            assert_eq!(stats.tasks, 40);
        }
    }

    #[test]
    fn governed_run_stops_when_cancelled() {
        use crate::govern::{Budget, Governor};
        let g = Governor::new(Budget::unlimited());
        g.cancel_token().cancel();
        let result = try_run_tasks_with(ParConfig::new(4), 1000, |_| 1, Some(&g), || (), |(), i| i);
        let interrupt = result.expect_err("cancelled run must interrupt");
        assert!(interrupt.cancelled);
        assert!(interrupt.faults.is_empty());
    }

    #[test]
    #[should_panic(expected = "task five exploded")]
    fn ungoverned_wrapper_turns_faults_into_one_clean_panic() {
        crate::govern::silence_injected_panics();
        let _ = run_tasks(
            ParConfig::new(4),
            16,
            |_| 1,
            |i| {
                assert!(i != 5, "task five exploded");
                i
            },
        );
    }
}

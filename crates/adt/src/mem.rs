//! Peak-memory accounting via a counting global allocator.
//!
//! The paper reports maximum resident set size measured with GNU `time`.
//! Running each analysis as a child process and sampling RSS is noisy and
//! couples the measurement to the harness; instead, binaries that want
//! Table III's memory column install [`CountingAlloc`] as their global
//! allocator and read live/peak byte counters around each analysis phase.
//!
//! ```no_run
//! use vsfs_adt::mem::{CountingAlloc, MemScope};
//!
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc::new();
//!
//! let scope = MemScope::start();
//! // ... run an analysis ...
//! println!("peak live bytes during analysis: {}", scope.peak_bytes());
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A [`GlobalAlloc`] wrapper over the system allocator that tracks live and
/// peak allocated bytes.
///
/// The tracking is process-global; install at most one instance.
#[derive(Debug, Default)]
pub struct CountingAlloc;

impl CountingAlloc {
    /// Creates the allocator (const so it can be a `static`).
    pub const fn new() -> Self {
        CountingAlloc
    }
}

fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    // Racy max update: good enough for measurement purposes.
    let mut peak = PEAK.load(Ordering::Relaxed);
    while live > peak {
        match PEAK.compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

fn on_dealloc(size: usize) {
    LIVE.fetch_sub(size, Ordering::Relaxed);
}

// SAFETY: delegates all allocation to `System` and only adds counter updates.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Currently live heap bytes (0 when [`CountingAlloc`] is not installed).
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Peak live heap bytes since process start or the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the peak to the current live byte count.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Measures peak heap growth over a region of code.
///
/// Captures the live count at `start`; [`MemScope::peak_bytes`] reports how
/// far the peak rose above that baseline.
#[derive(Debug)]
pub struct MemScope {
    baseline: usize,
}

impl MemScope {
    /// Starts a measurement scope (resets the peak counter).
    pub fn start() -> Self {
        reset_peak();
        MemScope { baseline: live_bytes() }
    }

    /// Peak bytes allocated above the baseline within this scope.
    pub fn peak_bytes(&self) -> usize {
        peak_bytes().saturating_sub(self.baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: the allocator is not installed in unit tests (installing a
    // global allocator in a test binary would affect every test), so we
    // exercise the counter plumbing directly.
    #[test]
    fn counters_track_alloc_dealloc() {
        reset_peak();
        let base_live = live_bytes();
        on_alloc(1000);
        assert_eq!(live_bytes(), base_live + 1000);
        assert!(peak_bytes() >= base_live + 1000);
        on_dealloc(1000);
        assert_eq!(live_bytes(), base_live);
        assert!(peak_bytes() >= base_live + 1000);
        reset_peak();
        assert_eq!(peak_bytes(), live_bytes());
    }

    #[test]
    fn scope_measures_growth_above_baseline() {
        let scope = MemScope::start();
        on_alloc(4096);
        on_dealloc(4096);
        assert!(scope.peak_bytes() >= 4096);
    }
}
